//! Unsupervised training of bipartite GraphSAGE (paper Eqs. 5 and 12).
//!
//! The bipartite graph-based loss encourages connected user-item pairs to
//! score high through a learned similarity network `f` (an MLP over the
//! concatenated embeddings and the edge weight) while negative users and
//! items drawn from a degree-biased distribution `P_n` score low:
//!
//! ```text
//! J_BG = -log σ(f[concat(z_u, z_i), S(u,i)])
//!        - Q_u · E_{u_n ~ P_n(u)} log σ(-f[concat(z_{u_n}, z_i), γ])
//!        - Q_i · E_{i_n ~ P_n(i)} log σ(-f[concat(z_u, z_{i_n}), γ])
//! ```
//!
//! (The paper writes `log σ(f[...])` for the negative terms as well; as in
//! GraphSAGE we implement the standard sign convention — negatives are
//! pushed toward low scores — which is BCE with target 0.)
//!
//! Negative embeddings are computed once per shard as a shared pool and
//! paired with positives by row gathering, which keeps the per-batch cost
//! at ~2x the positive-only cost instead of `(Q_u + Q_i)`x.
//!
//! ## Pluggable objectives
//!
//! The loss itself is no longer hard-wired: what happens inside one
//! shard's tape is delegated to a [`crate::objective::Objective`]
//! selected by [`SageTrainConfig::objective`] (Eq. 5 edge reconstruction
//! by default). This module owns the substrate — shuffling, batching,
//! gradient sharding, RNG streams, workspace pooling, the optimizer and
//! supervision hooks — and [`train_with_objective`] is the generic entry
//! point the convenience wrappers delegate to.
//!
//! ## Data-parallel execution
//!
//! Each minibatch is split into [`SageTrainConfig::grad_shards`] logical
//! shards. Workers launched by a
//! [`hignn_tensor::parallel::ParallelExecutor`] share `&ParamStore`
//! immutably, run the forward/backward pass for their shard on a private
//! [`Tape`] with a shard-local RNG seeded from
//! `(seed, epoch, batch, shard)`, and the per-shard gradients are
//! combined by [`hignn_tensor::parallel::reduce_gradients`] in a fixed
//! tree order before a single optimizer step. Because the decomposition
//! and every RNG stream depend only on the configuration — never on the
//! worker count — an N-thread run is bit-identical to a 1-thread run.

use crate::objective::{Objective, ObjectiveCtx, ObjectiveSpec, ShardBatch};
use crate::sage::{with_null_row, BipartiteSage, BipartiteSageConfig};
use crate::supervise::{PanicOnce, Watchdog};
use hignn_graph::BipartiteGraph;
use hignn_obs as obs;
use hignn_tensor::nn::{Activation, Mlp};
use hignn_tensor::optim::{Adam, Optimizer};
use hignn_tensor::parallel::{reduce_gradients, ParallelExecutor};
use hignn_tensor::{Gradients, MathMode, Matrix, ParamStore, Tape, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Mutex, PoisonError};

/// Hyper-parameters for unsupervised GraphSAGE training.
#[derive(Clone, Debug)]
pub struct SageTrainConfig {
    /// Epochs over the edge list.
    pub epochs: usize,
    /// Edges per minibatch.
    pub batch_edges: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Negative users per positive edge (`Q_u`).
    pub neg_users: usize,
    /// Negative items per positive edge (`Q_i`).
    pub neg_items: usize,
    /// Edge-weight stand-in fed to `f` for negative pairs (`γ`). `None`
    /// (the default) uses each batch's mean transformed positive weight,
    /// which keeps the weight column uninformative for positive/negative
    /// discrimination — otherwise the scorer can minimise the loss by
    /// keying on the weight input alone and never training the
    /// embeddings.
    pub gamma: Option<f32>,
    /// Decoupled weight decay (the paper uses L2 regularisation).
    pub weight_decay: f32,
    /// Size of the shared negative pool per batch.
    pub neg_pool: usize,
    /// Hidden widths of the similarity MLP `f`.
    pub scorer_hidden: Vec<usize>,
    /// Treat the input features as trainable embedding tables initialised
    /// from the provided matrices. The standard treatment when vertices
    /// carry no informative raw features (our synthetic nodes use random
    /// "id-hash" features); production HiGNN has real profile features
    /// and keeps this off.
    pub trainable_features: bool,
    /// Logical gradient shards per minibatch. Part of the numeric
    /// contract: shard boundaries and per-shard RNG streams are derived
    /// from this count (never from the thread count), so changing it
    /// changes results, while changing the worker count does not. The
    /// executor runs up to this many shards concurrently.
    pub grad_shards: usize,
    /// Which loss trains the level. [`ObjectiveSpec::EdgeReconstruction`]
    /// (the paper's Eq. 5) by default; see [`crate::objective`].
    pub objective: ObjectiveSpec,
    /// Math tier for the hot kernels ([`MathMode::Bitwise`] by
    /// default). FastMath vectorises the matmul/activation/optimizer
    /// loops with a relaxed (but still deterministic) accumulation
    /// order; see DESIGN.md §14.
    pub math: MathMode,
}

impl Default for SageTrainConfig {
    fn default() -> Self {
        SageTrainConfig {
            epochs: 2,
            batch_edges: 256,
            lr: 1e-3,
            neg_users: 3,
            neg_items: 3,
            gamma: None,
            weight_decay: 1e-5,
            neg_pool: 64,
            scorer_hidden: vec![64],
            trainable_features: false,
            grad_shards: 8,
            objective: ObjectiveSpec::EdgeReconstruction,
            math: MathMode::Bitwise,
        }
    }
}

/// Sampling stride for the per-batch derived metrics (gradient norm,
/// batch wall-clock). Counters and loss histograms stay exact per
/// batch; only these two — whose derivation cost scales with the model
/// or touches the clock twice — record every `OBS_SAMPLE`-th minibatch,
/// keeping the metrics-on overhead within the bench noise band.
const OBS_SAMPLE: usize = 8;

/// L2 norm of all gradient entries, accumulated in an f64 owned by the
/// instrumentation — the training-side f32 state is only read, so the
/// inertness contract (DESIGN.md §10) holds by construction. Called only
/// when metrics are enabled.
fn grad_l2_norm(grads: &Gradients) -> f64 {
    let mut sum_sq = 0f64;
    for (_, m) in grads.iter() {
        for &v in m.data() {
            sum_sq += (v as f64) * (v as f64);
        }
    }
    sum_sq.sqrt()
}

/// Derives the RNG seed for one gradient shard from the run seed and the
/// shard's logical coordinates (epoch, batch, shard index). SplitMix64-
/// style finalising so nearby coordinates yield unrelated streams.
fn shard_seed(seed: u64, epoch: u64, batch: u64, shard: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [epoch, batch, shard] {
        h ^= v.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = h.rotate_left(27).wrapping_mul(0x94D0_49BB_1331_11EB);
    }
    h
}

/// A trained GraphSAGE level: module + scorer + their parameters.
pub struct TrainedSage {
    /// The GraphSAGE module.
    pub sage: BipartiteSage,
    /// The similarity network `f`.
    pub scorer: Mlp,
    /// Parameter store holding both.
    pub store: ParamStore,
    /// Trainable feature tables, when
    /// [`SageTrainConfig::trainable_features`] was set.
    pub feature_params: Option<(hignn_tensor::ParamId, hignn_tensor::ParamId)>,
    /// Mean training loss per epoch (diagnostic).
    pub epoch_losses: Vec<f32>,
}

impl TrainedSage {
    /// Full-graph inference of both sides' final embeddings. When the
    /// features were trainable, the learned tables are used instead of
    /// the provided matrices.
    pub fn embed_all(
        &self,
        graph: &BipartiteGraph,
        user_feats: &Matrix,
        item_feats: &Matrix,
    ) -> (Matrix, Matrix) {
        self.embed_all_with(graph, user_feats, item_feats, &ParallelExecutor::single())
    }

    /// [`TrainedSage::embed_all`] with an explicit executor; bit-identical
    /// at any worker count.
    pub fn embed_all_with(
        &self,
        graph: &BipartiteGraph,
        user_feats: &Matrix,
        item_feats: &Matrix,
        exec: &ParallelExecutor,
    ) -> (Matrix, Matrix) {
        match self.feature_params {
            Some((u, i)) => self.sage.embed_all_with(
                &self.store,
                graph,
                self.store.get(u),
                self.store.get(i),
                exec,
            ),
            None => self.sage.embed_all_with(&self.store, graph, user_feats, item_feats, exec),
        }
    }

    /// Scores user-item pairs (higher = more likely connected), given
    /// already-computed embeddings; used by tests and link-prediction
    /// evaluations.
    pub fn score_pairs(
        &self,
        zu: &Matrix,
        zi: &Matrix,
        pairs: &[(u32, u32)],
        weight: f32,
    ) -> Vec<f32> {
        let d = zu.cols();
        let mut input = Matrix::zeros(pairs.len(), 2 * d + 1);
        for (k, &(u, i)) in pairs.iter().enumerate() {
            let row = input.row_mut(k);
            row[..d].copy_from_slice(zu.row(u as usize));
            row[d..2 * d].copy_from_slice(zi.row(i as usize));
            row[2 * d] = weight;
        }
        let logits = self.scorer.infer(&self.store, &input);
        (0..pairs.len()).map(|k| logits.get(k, 0)).collect()
    }
}

/// Per-epoch numeric-health checks for training.
///
/// When enabled, every epoch's mean loss and every parameter matrix are
/// checked for finiteness (via `Matrix::all_finite`); the first NaN/Inf
/// stops training with [`TrainError::NonFinite`] instead of silently
/// poisoning all downstream levels. What happens next (abort the run or
/// roll back to the last checkpoint) is decided by the caller's
/// divergence policy — see `crate::stack::GuardPolicy`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrainGuard {
    /// Run the per-epoch checks.
    pub enabled: bool,
}

impl TrainGuard {
    /// A guard that checks every epoch.
    pub fn checking() -> Self {
        TrainGuard { enabled: true }
    }
}

/// Why [`train_unsupervised_checked`] stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// A non-finite loss or parameter appeared.
    NonFinite {
        /// 0-based epoch at which it was detected.
        epoch: usize,
        /// What was non-finite (e.g. `mean epoch loss = NaN`).
        detail: String,
    },
    /// A fault plan asked for a simulated crash at this point.
    Injected {
        /// 0-based epoch after which the crash fired.
        epoch: usize,
        /// Human-readable description of the injected fault.
        description: String,
    },
    /// The build watchdog's deadline expired at an epoch boundary.
    DeadlineExceeded {
        /// 0-based epoch after which the deadline was observed.
        epoch: usize,
    },
}

/// Per-level supervision hooks threaded into
/// [`train_unsupervised_checked`] by the build loop: fault injection
/// (simulated crash, one-shot worker panic, virtual stall) and the
/// watchdog deadline, all checked at deterministic points so none of
/// them can change the numbers of a surviving run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochHooks<'a> {
    /// Simulated crash after this 0-based epoch (fault injection).
    pub crash_after_epoch: Option<usize>,
    /// One-shot injected worker panic, recovered by the executor's
    /// deterministic re-execution (fault injection).
    pub panic_once: Option<&'a PanicOnce>,
    /// `(epoch, virtual_ms)`: advance the watchdog's virtual clock
    /// after that epoch completes (fault injection; no real sleep).
    pub stall_after_epoch: Option<(usize, u64)>,
    /// Deadline watchdog checked after every epoch; expiry stops
    /// training with [`TrainError::DeadlineExceeded`].
    pub watchdog: Option<&'a Watchdog>,
}

impl<'a> EpochHooks<'a> {
    /// Hooks with only a simulated crash (the PR 1-era harness shape).
    pub fn crash_after(epoch: Option<usize>) -> Self {
        EpochHooks { crash_after_epoch: epoch, ..Default::default() }
    }
}

/// Trains one bipartite GraphSAGE level on `graph` with the unsupervised
/// loss, returning the trained module. Infallible convenience wrapper
/// over [`train_unsupervised_checked`] with the guard disabled and a
/// single-threaded executor (bit-identical to any other thread count).
pub fn train_unsupervised(
    graph: &BipartiteGraph,
    user_feats: &Matrix,
    item_feats: &Matrix,
    sage_cfg: BipartiteSageConfig,
    cfg: &SageTrainConfig,
    seed: u64,
) -> TrainedSage {
    train_unsupervised_checked(
        graph,
        user_feats,
        item_feats,
        sage_cfg,
        cfg,
        seed,
        &ParallelExecutor::single(),
        TrainGuard::default(),
        EpochHooks::default(),
    )
    .expect("training cannot fail with the guard disabled and no fault injection")
}

/// Forward/backward for one shard of a minibatch on a private tape,
/// with the loss composition delegated to `objective`.
///
/// Returns the shard's loss and gradients, both already scaled by
/// `weight` (= shard rows / batch rows), so the caller just sums losses
/// and tree-reduces gradients in shard order.
fn shard_pass(
    ctx: &ObjectiveCtx<'_>,
    objective: &dyn Objective,
    ws: &Workspace,
    batch: &ShardBatch<'_>,
    weight: f32,
    rng: &mut StdRng,
) -> (f32, Gradients) {
    let mut tape = Tape::with_workspace(ctx.store, ws).with_math(ctx.cfg.math);
    let loss = objective.shard_loss(ctx, &mut tape, batch, rng);
    let loss_val = tape.scalar(loss);
    let mut grads = tape.backward(loss);
    // Hand every node buffer back to the shard's workspace so the next
    // minibatch's tape allocates nothing after warmup.
    tape.recycle();
    grads.scale(weight);
    (loss_val * weight, grads)
}

/// Like [`train_unsupervised`], but with an explicit executor, per-epoch
/// numeric-health checks ([`TrainGuard`]) and supervision hooks
/// ([`EpochHooks`]: fault injection and the watchdog deadline). The loss
/// is instantiated from [`SageTrainConfig::objective`].
///
/// `exec` controls only physical concurrency: any worker count yields
/// bit-identical parameters (see the module docs for why).
#[allow(clippy::too_many_arguments)]
pub fn train_unsupervised_checked(
    graph: &BipartiteGraph,
    user_feats: &Matrix,
    item_feats: &Matrix,
    sage_cfg: BipartiteSageConfig,
    cfg: &SageTrainConfig,
    seed: u64,
    exec: &ParallelExecutor,
    guard: TrainGuard,
    hooks: EpochHooks<'_>,
) -> Result<TrainedSage, TrainError> {
    assert!(graph.num_edges() > 0, "train_unsupervised: graph has no edges");
    let objective = cfg.objective.instantiate(graph);
    train_with_objective(
        graph,
        user_feats,
        item_feats,
        sage_cfg,
        cfg,
        objective.as_ref(),
        seed,
        exec,
        guard,
        hooks,
    )
}

/// The generic training substrate: trains one bipartite GraphSAGE level
/// under an explicit [`Objective`]. [`train_unsupervised`] and
/// [`train_unsupervised_checked`] delegate here after instantiating the
/// configured objective; callers with a custom `Objective` impl call
/// this directly.
#[allow(clippy::too_many_arguments)]
pub fn train_with_objective(
    graph: &BipartiteGraph,
    user_feats: &Matrix,
    item_feats: &Matrix,
    sage_cfg: BipartiteSageConfig,
    cfg: &SageTrainConfig,
    objective: &dyn Objective,
    seed: u64,
    exec: &ParallelExecutor,
    guard: TrainGuard,
    hooks: EpochHooks<'_>,
) -> Result<TrainedSage, TrainError> {
    assert!(graph.num_edges() > 0, "train_unsupervised: graph has no edges");
    let kind = objective.kind();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let sage = BipartiteSage::new(&mut store, "sage", sage_cfg, &mut rng);
    let d = sage.output_dim();
    let mut scorer_dims = vec![2 * d + 1];
    scorer_dims.extend_from_slice(&cfg.scorer_hidden);
    scorer_dims.push(1);
    let scorer = Mlp::new(&mut store, "scorer", &scorer_dims, Activation::LeakyRelu, &mut rng);

    let uf = with_null_row(user_feats);
    let if_ = with_null_row(item_feats);
    let feature_params = if cfg.trainable_features {
        Some((store.add("feat.user", uf.clone()), store.add("feat.item", if_.clone())))
    } else {
        None
    };
    let user_src = match feature_params {
        Some((u, _)) => crate::sage::FeatureSource::Trainable(u),
        None => crate::sage::FeatureSource::Fixed(&uf),
    };
    let item_src = match feature_params {
        Some((_, i)) => crate::sage::FeatureSource::Trainable(i),
        None => crate::sage::FeatureSource::Fixed(&if_),
    };
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay).with_math(cfg.math);

    let edges = graph.edges();
    let mut order: Vec<usize> = (0..edges.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);

    // One buffer pool per logical shard, reused across every minibatch of
    // the run. Shard `s` always leases from `workspaces[s]`, so after the
    // first batch warms the pools the tape hot path stops allocating.
    // The Mutex exists only to make the pools shareable across worker
    // threads; shard indices are distinct per dispatch, so locks are
    // uncontended.
    let workspaces: Vec<Mutex<Workspace>> =
        (0..cfg.grad_shards.max(1)).map(|_| Mutex::new(Workspace::new())).collect();

    for epoch in 0..cfg.epochs {
        let _epoch_span = obs::span("train.epoch");
        // Shuffle edge order.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        let mut epoch_loss = 0f64;
        let mut batches = 0usize;
        for (batch_idx, chunk) in order.chunks(cfg.batch_edges).enumerate() {
            let batch_start =
                (obs::enabled() && batch_idx % OBS_SAMPLE == 0).then(std::time::Instant::now);
            let batch: Vec<(u32, u32, f32)> = chunk.iter().map(|&k| edges[k]).collect();
            let users: Vec<usize> = batch.iter().map(|&(u, _, _)| u as usize).collect();
            let items: Vec<usize> = batch.iter().map(|&(_, i, _)| i as usize).collect();
            let weights: Vec<f32> = batch.iter().map(|&(_, _, w)| (1.0 + w).ln()).collect();
            let n = batch.len();

            // Batch-wide gamma, computed before dispatch so every shard
            // sees the same value regardless of decomposition.
            let gamma = cfg
                .gamma
                .unwrap_or_else(|| weights.iter().sum::<f32>() / n.max(1) as f32);

            // Logical shards: boundaries depend only on n and the
            // configured shard count, never on the worker count.
            let shard_len = n.div_ceil(cfg.grad_shards.max(1));
            let num_shards = n.div_ceil(shard_len);
            let ctx = ObjectiveCtx {
                store: &store,
                sage: &sage,
                scorer: &scorer,
                graph,
                user_src,
                item_src,
                cfg,
            };
            let shard_results: Vec<(f32, Gradients)> = exec.map(num_shards, |s| {
                // Chaos harness: a one-shot injected panic here is
                // caught by the executor and the shard re-executed —
                // by then the trigger is spent, and the re-run must be
                // bitwise identical (all shard state derives from
                // (seed, epoch, batch, shard), never the schedule).
                if let Some(p) = hooks.panic_once {
                    p.fire_if_match(epoch, s);
                }
                let lo = s * shard_len;
                let hi = (lo + shard_len).min(n);
                let mut shard_rng = StdRng::seed_from_u64(shard_seed(
                    seed,
                    epoch as u64,
                    batch_idx as u64,
                    s as u64,
                ));
                // Poison recovery, not propagation: a worker panic while
                // holding this lock leaves the pool structurally intact
                // (RefCell borrow flags unwind cleanly, buckets hold only
                // cleared buffers), and pool contents never reach the
                // numbers — leases are zeroed or fully overwritten — so a
                // re-executed shard is bitwise identical either way.
                let ws = workspaces[s].lock().unwrap_or_else(PoisonError::into_inner);
                let shard_batch = ShardBatch {
                    users: &users[lo..hi],
                    items: &items[lo..hi],
                    weights: &weights[lo..hi],
                    gamma,
                };
                shard_pass(
                    &ctx,
                    objective,
                    &ws,
                    &shard_batch,
                    (hi - lo) as f32 / n as f32,
                    &mut shard_rng,
                )
            });

            // Losses sum in shard order; gradients reduce by a fixed
            // pairwise tree — both independent of the worker count.
            let mut shard_grads = Vec::with_capacity(shard_results.len());
            let mut batch_loss = 0f64;
            for (loss, g) in shard_results {
                batch_loss += loss as f64;
                shard_grads.push(g);
            }
            let grads = reduce_gradients(shard_grads);

            epoch_loss += batch_loss;
            batches += 1;
            opt.step(&mut store, &grads);

            // Per-minibatch instrumentation: reads of already-computed
            // values only (plus the clock), gated so a metrics-off run
            // does none of this work. Counters and the loss histograms
            // (which report contracts assert per-batch) flush through a
            // single registry lock; the two derived metrics with real
            // per-batch cost — the O(params) gradient-norm reduction
            // and the clock pair — are sampled every [`OBS_SAMPLE`]-th
            // batch (`batch_start` is only `Some` on sampled batches).
            if obs::enabled() {
                let counters =
                    [("train.batches", 1u64), ("train.edges", n as u64), (kind.obs_batches(), 1)];
                if let Some(t0) = batch_start {
                    let grad_norm = grad_l2_norm(&grads);
                    obs::record_batch(
                        &counters,
                        &[
                            ("train.batch_loss", batch_loss),
                            (kind.obs_batch_loss(), batch_loss),
                            ("train.grad_norm", grad_norm),
                            (kind.obs_grad_norm(), grad_norm),
                            ("train.batch_seconds", t0.elapsed().as_secs_f64()),
                        ],
                        &[],
                    );
                } else {
                    obs::record_batch(
                        &counters,
                        &[
                            ("train.batch_loss", batch_loss),
                            (kind.obs_batch_loss(), batch_loss),
                        ],
                        &[],
                    );
                }
            }
            if obs::log_enabled() {
                obs::maybe_heartbeat(|| {
                    vec![
                        ("epoch", obs::LogValue::Uint(epoch as u64)),
                        ("batch", obs::LogValue::Uint(batch_idx as u64)),
                        ("batch_loss", obs::LogValue::Float(batch_loss)),
                    ]
                });
            }
        }
        let mean_loss = (epoch_loss / batches.max(1) as f64) as f32;
        epoch_losses.push(mean_loss);

        if obs::enabled() {
            obs::counter_add("train.epochs", 1);
            obs::series_push("train.epoch_loss", mean_loss as f64);
            obs::series_push(kind.obs_epoch_loss(), mean_loss as f64);
            obs::gauge_set("train.last_epoch_loss", mean_loss as f64);
        }
        if obs::log_enabled() {
            obs::heartbeat(&[
                ("epoch", obs::LogValue::Uint(epoch as u64)),
                ("epoch_loss", obs::LogValue::Float(mean_loss as f64)),
                ("batches", obs::LogValue::Uint(batches as u64)),
            ]);
        }

        if guard.enabled {
            if !mean_loss.is_finite() {
                return Err(TrainError::NonFinite {
                    epoch,
                    detail: format!("mean epoch loss = {mean_loss}"),
                });
            }
            if !store.all_finite() {
                return Err(TrainError::NonFinite {
                    epoch,
                    detail: "non-finite parameter after optimizer step".into(),
                });
            }
        }
        if hooks.crash_after_epoch == Some(epoch) {
            return Err(TrainError::Injected {
                epoch,
                description: format!("simulated crash after epoch {epoch}"),
            });
        }
        // Injected stall first (it models this epoch having been slow),
        // then the watchdog check that would observe it.
        if let Some((stall_epoch, virtual_ms)) = hooks.stall_after_epoch {
            if stall_epoch == epoch {
                if let Some(w) = hooks.watchdog {
                    w.advance_ms(virtual_ms);
                }
            }
        }
        if hooks.watchdog.is_some_and(Watchdog::expired) {
            return Err(TrainError::DeadlineExceeded { epoch });
        }
    }

    // Surface the per-shard buffer-pool counters (leases served, pool
    // misses, retained capacity) aggregated across shards. Counters
    // accumulate across levels of a hierarchical run; the retained-*
    // figures are point-in-time, hence gauges.
    if obs::enabled() {
        let total = workspaces.iter().fold(
            hignn_tensor::WorkspaceStats::default(),
            |acc, ws| acc.merge(&ws.lock().unwrap_or_else(PoisonError::into_inner).stats()),
        );
        obs::counter_add("workspace.leases", total.leases);
        obs::counter_add("workspace.fresh_allocs", total.fresh_allocs);
        obs::gauge_set("workspace.retained_buffers", total.retained_buffers as f64);
        obs::gauge_set("workspace.retained_elems", total.retained_elems as f64);
        // Process-wide count of worker panics the executor recovered by
        // re-execution (a gauge: the counter lives in hignn-tensor).
        obs::gauge_set(
            "parallel.recovered_panics",
            hignn_tensor::parallel::recovered_panics() as f64,
        );
    }

    Ok(TrainedSage { sage, scorer, store, feature_params, epoch_losses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn_graph::SamplingMode;
    use hignn_metrics::auc;
    use hignn_tensor::init;

    /// Two-block bipartite graph: users 0..10 click items 0..10, users
    /// 10..20 click items 10..20.
    fn block_graph(rng: &mut StdRng) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..20u32 {
            let base = if u < 10 { 0 } else { 10 };
            for _ in 0..6 {
                let i = base + rng.gen_range(0..10u32);
                edges.push((u, i, 1.0));
            }
        }
        BipartiteGraph::from_edges(20, 20, edges)
    }

    fn small_cfg() -> (BipartiteSageConfig, SageTrainConfig) {
        (
            BipartiteSageConfig {
                input_dim: 8,
                dim: 8,
                fanouts: vec![4, 3],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            SageTrainConfig {
                epochs: 40,
                batch_edges: 32,
                lr: 1e-2,
                neg_pool: 16,
                ..Default::default()
            },
        )
    }

    #[test]
    fn loss_decreases() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (scfg, tcfg) = small_cfg();
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 42);
        let first = trained.epoch_losses[0];
        let last = *trained.epoch_losses.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(trained.store.all_finite());
    }

    #[test]
    fn link_prediction_beats_random() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (scfg, tcfg) = small_cfg();
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 43);
        let (zu, zi) = trained.embed_all(&g, &uf, &if_);
        // Positive pairs: in-block; negatives: cross-block.
        let mut pairs = Vec::new();
        let mut labels = Vec::new();
        for u in 0..20u32 {
            for i in 0..20u32 {
                let same_block = (u < 10) == (i < 10);
                pairs.push((u, i));
                labels.push(same_block);
            }
        }
        let scores = trained.score_pairs(&zu, &zi, &pairs, 0.5);
        let a = auc(&scores, &labels);
        assert!(a > 0.75, "link-pred AUC {a}");
    }

    #[test]
    fn shared_weights_train_and_infer() {
        // The query-item variant: one weight set for both sides.
        let mut rng = StdRng::seed_from_u64(4);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (mut scfg, mut tcfg) = small_cfg();
        scfg.shared_weights = true;
        tcfg.epochs = 5;
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 50);
        let (zu, zi) = trained.embed_all(&g, &uf, &if_);
        assert!(zu.all_finite() && zi.all_finite());
        assert!(trained.epoch_losses.last().unwrap() < &trained.epoch_losses[0]);
    }

    #[test]
    fn max_aggregator_trains() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (mut scfg, mut tcfg) = small_cfg();
        scfg.aggregator = crate::sage::Aggregator::Max;
        tcfg.epochs = 3;
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 51);
        assert!(trained.store.all_finite());
        let (zu, _) = trained.embed_all(&g, &uf, &if_);
        assert!(zu.all_finite());
    }

    #[test]
    fn trainable_features_receive_updates() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (scfg, mut tcfg) = small_cfg();
        tcfg.trainable_features = true;
        tcfg.epochs = 2;
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 52);
        let (u_id, i_id) = trained.feature_params.expect("feature params registered");
        // The learned tables must have moved away from their initial
        // values (null row excluded, which only moves if isolated
        // vertices appear in batches).
        let learned_u = trained.store.get(u_id);
        let initial_u = with_null_row(&uf);
        assert_eq!(learned_u.shape(), initial_u.shape());
        assert!(learned_u.max_abs_diff(&initial_u) > 1e-5);
        assert!(trained.store.get(i_id).all_finite());
    }

    #[test]
    fn fixed_gamma_is_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (scfg, mut tcfg) = small_cfg();
        tcfg.gamma = Some(0.5);
        tcfg.epochs = 2;
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 53);
        assert!(trained.store.all_finite());
    }

    #[test]
    #[should_panic(expected = "no edges")]
    fn empty_graph_rejected() {
        let g = BipartiteGraph::from_edges(2, 2, Vec::<(u32, u32, f32)>::new());
        let uf = Matrix::zeros(2, 4);
        let if_ = Matrix::zeros(2, 4);
        let (mut scfg, tcfg) = small_cfg();
        scfg.input_dim = 4;
        train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 1);
    }
}
