//! Bipartite GraphSAGE (paper Section III.B and V.B).
//!
//! Two-sided GraphSAGE over a weighted bipartite graph: at each step `p` a
//! user aggregates its item neighbours' step-`p-1` embeddings (Eq. 1),
//! transformed into user space by `M_i→u`, concatenated with its own
//! previous embedding, and projected through `W_u^p` with a nonlinearity
//! (Eq. 3); items do the symmetric thing (Eqs. 2, 4). The query-item
//! variant of Section V.B shares the weight matrices across sides because
//! both sides live in one word-embedding space — enabled here with
//! [`BipartiteSageConfig::shared_weights`].
//!
//! Training uses fixed-fanout sampled minibatches ([`BipartiteSage::embed_batch`]);
//! inference uses exact full-neighbourhood propagation
//! ([`BipartiteSage::embed_all`]) so cluster inputs are deterministic.

use hignn_graph::{BipartiteGraph, SamplingMode, Side};
use hignn_tensor::nn::Activation;
use hignn_tensor::parallel::{ParallelExecutor, ROW_CHUNK};
use hignn_tensor::{init, Matrix, ParamId, ParamStore, Tape, Var};
use rand::Rng;

/// Neighbourhood aggregation variants. The paper adopts the mean
/// aggregator ("Any type of aggregator is available and we adopt mean
/// aggregator in our demonstration"); sum and max are provided for
/// ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregator {
    /// Mean of neighbour embeddings (the paper's choice).
    Mean,
    /// Sum of neighbour embeddings.
    Sum,
    /// Element-wise max of neighbour embeddings.
    Max,
}

/// Configuration of a bipartite GraphSAGE module.
#[derive(Clone, Debug)]
pub struct BipartiteSageConfig {
    /// Input feature dimensionality (`d_u = d_i` is assumed; the paper
    /// sets both to 32).
    pub input_dim: usize,
    /// Embedding dimensionality of every step output.
    pub dim: usize,
    /// Neighbours sampled per depth during training (`fanouts.len()` is
    /// the number of aggregation steps `P`; the paper's complexity
    /// analysis uses `K1`, `K2`).
    pub fanouts: Vec<usize>,
    /// Uniform or edge-weight-biased neighbour sampling.
    pub sampling: SamplingMode,
    /// Aggregator (mean in the paper).
    pub aggregator: Aggregator,
    /// Hidden activation (leaky ReLU in the paper).
    pub activation: Activation,
    /// Share `W^p`/`M^p` across sides (query-item variant, Section V.B).
    pub shared_weights: bool,
}

impl Default for BipartiteSageConfig {
    fn default() -> Self {
        BipartiteSageConfig {
            input_dim: 32,
            dim: 32,
            fanouts: vec![8, 4],
            sampling: SamplingMode::WeightBiased,
            aggregator: Aggregator::Mean,
            activation: Activation::LeakyRelu,
            shared_weights: false,
        }
    }
}

/// Where a side's input features come from during minibatch training.
#[derive(Clone, Copy, Debug)]
pub enum FeatureSource<'a> {
    /// Constant features (must include the null zero row).
    Fixed(&'a Matrix),
    /// Trainable feature table registered in the parameter store (must
    /// include the null row). Gradients flow into the table.
    Trainable(ParamId),
}

/// Per-side, per-step parameters.
#[derive(Clone, Debug)]
struct StepParams {
    /// Cross-side transformation `M` (`d_{p-1} x d_{p-1}`).
    m: ParamId,
    /// Projection `W^p` (`2 d_{p-1} x d_p`).
    w: ParamId,
    /// Bias (`1 x d_p`).
    b: ParamId,
}

/// A bipartite GraphSAGE module with parameters registered in a
/// [`ParamStore`].
#[derive(Clone, Debug)]
pub struct BipartiteSage {
    cfg: BipartiteSageConfig,
    /// `user_steps[p-1]` used when the updated side is the left side.
    user_steps: Vec<StepParams>,
    /// `item_steps[p-1]` used when the updated side is the right side
    /// (aliases `user_steps` under shared weights).
    item_steps: Vec<StepParams>,
}

impl BipartiteSage {
    /// Registers parameters under `name.*` in `store`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cfg: BipartiteSageConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!cfg.fanouts.is_empty(), "BipartiteSage: need at least one step");
        fn make_side(
            store: &mut ParamStore,
            name: &str,
            side: &str,
            cfg: &BipartiteSageConfig,
            rng: &mut impl Rng,
        ) -> Vec<StepParams> {
            (1..=cfg.fanouts.len())
                .map(|p| {
                    let d_in = if p == 1 { cfg.input_dim } else { cfg.dim };
                    let m = store.add(
                        format!("{name}.{side}.m{p}"),
                        init::xavier_uniform(d_in, d_in, rng),
                    );
                    let w = store.add(
                        format!("{name}.{side}.w{p}"),
                        init::he_uniform(2 * d_in, cfg.dim, rng),
                    );
                    let b = store.add(format!("{name}.{side}.b{p}"), Matrix::zeros(1, cfg.dim));
                    StepParams { m, w, b }
                })
                .collect()
        }
        let user_steps = make_side(store, name, "user", &cfg, rng);
        let item_steps = if cfg.shared_weights {
            user_steps.clone()
        } else {
            make_side(store, name, "item", &cfg, rng)
        };
        BipartiteSage { cfg, user_steps, item_steps }
    }

    /// The module's configuration.
    pub fn config(&self) -> &BipartiteSageConfig {
        &self.cfg
    }

    /// Number of aggregation steps `P`.
    pub fn num_steps(&self) -> usize {
        self.cfg.fanouts.len()
    }

    /// Output embedding dimensionality.
    pub fn output_dim(&self) -> usize {
        self.cfg.dim
    }

    fn steps_for(&self, side: Side) -> &[StepParams] {
        match side {
            Side::Left => &self.user_steps,
            Side::Right => &self.item_steps,
        }
    }

    /// Computes step-`P` embeddings for `batch` vertices of `side` with
    /// sampled neighbourhoods (training path; gradients flow into all
    /// step parameters).
    ///
    /// `user_feats` / `item_feats` must carry one extra zero row at index
    /// `n` (see [`with_null_row`]) used for isolated vertices.
    #[allow(clippy::too_many_arguments)]
    pub fn embed_batch(
        &self,
        tape: &mut Tape,
        graph: &BipartiteGraph,
        side: Side,
        batch: &[usize],
        user_feats: &Matrix,
        item_feats: &Matrix,
        rng: &mut impl Rng,
    ) -> Var {
        debug_assert_eq!(user_feats.rows(), graph.num_left() + 1, "user_feats must include null row");
        debug_assert_eq!(item_feats.rows(), graph.num_right() + 1, "item_feats must include null row");
        self.embed_batch_src(
            tape,
            graph,
            side,
            batch,
            FeatureSource::Fixed(user_feats),
            FeatureSource::Fixed(item_feats),
            rng,
        )
    }

    /// Like [`BipartiteSage::embed_batch`] but with either fixed or
    /// trainable input features per side. Trainable features are
    /// parameter matrices (with null row) that receive gradients — the
    /// standard treatment when vertices carry no informative raw features.
    #[allow(clippy::too_many_arguments)]
    pub fn embed_batch_src(
        &self,
        tape: &mut Tape,
        graph: &BipartiteGraph,
        side: Side,
        batch: &[usize],
        user_feats: FeatureSource<'_>,
        item_feats: FeatureSource<'_>,
        rng: &mut impl Rng,
    ) -> Var {
        // Counters only on the sampled-training path: it runs inside
        // parallel shard workers, where a span's clock read per call
        // would be the costliest part of the instrumentation.
        hignn_obs::counter_add("sage.embed_batch_calls", 1);
        hignn_obs::counter_add("sage.embed_batch_rows", batch.len() as u64);
        let p_max = self.num_steps();
        // Build the sampled layer tree: layers[0] = batch, layers[l+1] =
        // fanout-sampled neighbours of layers[l].
        let mut layers: Vec<Vec<usize>> = vec![batch.to_vec()];
        for l in 0..p_max {
            let layer_side = side_at(side, l);
            let next = sample_layer(
                graph,
                layer_side,
                &layers[l],
                self.cfg.fanouts[l],
                self.cfg.sampling,
                rng,
            );
            layers.push(next);
        }
        // Initial embeddings. Fixed features are gathered outside the tape
        // (constants, no gradient); trainable features are gathered on the
        // tape so gradients scatter back into the embedding table.
        //
        // For mean/sum aggregation the deepest layer is consumed exactly
        // once — by the pooling at step p = 1 — so its gathered
        // `|batch|·∏fanouts x d` matrix is never materialized: the fused
        // gather + mean-pool reads feature rows straight into the pooled
        // output (bitwise identical to gather-then-pool; see the tape
        // tests). Max aggregation needs the individual rows, so it keeps
        // the unfused path.
        let fuse_deepest = self.cfg.aggregator != Aggregator::Max;
        let mut trainable_vars: [Option<Var>; 2] = [None, None];
        fn table_var(tape: &mut Tape, vars: &mut [Option<Var>; 2], slot: usize, pid: ParamId) -> Var {
            *vars[slot].get_or_insert_with(|| tape.param(pid))
        }
        let src_for = |l: usize| -> (FeatureSource<'_>, usize) {
            match side_at(side, l) {
                Side::Left => (user_feats, 0),
                Side::Right => (item_feats, 1),
            }
        };
        let mut h: Vec<Var> = Vec::with_capacity(layers.len());
        for (l, ids) in layers.iter().enumerate() {
            if fuse_deepest && l == p_max {
                break;
            }
            let (src, slot) = src_for(l);
            let v = match src {
                FeatureSource::Fixed(m) => tape.input(m.gather_rows(ids)),
                FeatureSource::Trainable(pid) => {
                    let table = table_var(tape, &mut trainable_vars, slot, pid);
                    tape.gather_rows(table, ids)
                }
            };
            h.push(v);
        }
        // Steps p = 1..=P update layers 0..=P-p.
        for p in 1..=p_max {
            for l in 0..=(p_max - p) {
                let layer_side = side_at(side, l);
                let params = &self.steps_for(layer_side)[p - 1];
                let fanout = self.cfg.fanouts[l];
                let agg = if fuse_deepest && p == 1 && l + 1 == p_max {
                    let (src, slot) = src_for(p_max);
                    let pooled = match src {
                        FeatureSource::Fixed(m) => {
                            let mut out = Matrix::zeros(layers[p_max].len() / fanout, m.cols());
                            m.gather_mean_pool_rows_into_mode(
                                &layers[p_max],
                                fanout,
                                &mut out,
                                tape.math(),
                            );
                            tape.input(out)
                        }
                        FeatureSource::Trainable(pid) => {
                            let table = table_var(tape, &mut trainable_vars, slot, pid);
                            tape.gather_mean_pool_rows(table, &layers[p_max], fanout)
                        }
                    };
                    match self.cfg.aggregator {
                        Aggregator::Sum => tape.scale(pooled, fanout as f32),
                        _ => pooled,
                    }
                } else {
                    match self.cfg.aggregator {
                        Aggregator::Mean => tape.mean_pool_rows(h[l + 1], fanout),
                        Aggregator::Sum => {
                            let m = tape.mean_pool_rows(h[l + 1], fanout);
                            tape.scale(m, fanout as f32)
                        }
                        Aggregator::Max => tape.max_pool_rows(h[l + 1], fanout),
                    }
                };
                let m = tape.param(params.m);
                let transformed = tape.matmul(agg, m);
                let cat = tape.concat_cols(&[h[l], transformed]);
                let w = tape.param(params.w);
                let b = tape.param(params.b);
                let lin = tape.matmul(cat, w);
                let lin = tape.add_bias(lin, b);
                h[l] = apply_activation(tape, self.cfg.activation, lin);
            }
        }
        h[0]
    }

    /// Deterministic full-neighbourhood inference for every vertex of
    /// both sides (tape-free). Returns `(user_embeddings, item_embeddings)`.
    pub fn embed_all(
        &self,
        store: &ParamStore,
        graph: &BipartiteGraph,
        user_feats: &Matrix,
        item_feats: &Matrix,
    ) -> (Matrix, Matrix) {
        self.embed_all_with(store, graph, user_feats, item_feats, &ParallelExecutor::single())
    }

    /// [`BipartiteSage::embed_all`] with an explicit executor. Both the
    /// neighbourhood aggregation and the dense update are embarrassingly
    /// row-parallel, so they run over fixed [`ROW_CHUNK`]-row chunks
    /// merged in chunk order — bit-identical at any worker count.
    pub fn embed_all_with(
        &self,
        store: &ParamStore,
        graph: &BipartiteGraph,
        user_feats: &Matrix,
        item_feats: &Matrix,
        exec: &ParallelExecutor,
    ) -> (Matrix, Matrix) {
        let _span = hignn_obs::span("sage.embed_all");
        hignn_obs::counter_add(
            "sage.embed_all_rows",
            (graph.num_left() + graph.num_right()) as u64,
        );
        // Accepts features with or without the null row. Borrows the
        // caller's matrix when it already has the right shape — the first
        // propagation step only reads it, so no copy is needed.
        fn take(m: &Matrix, n: usize) -> std::borrow::Cow<'_, Matrix> {
            if m.rows() == n + 1 {
                std::borrow::Cow::Owned(m.gather_rows(&(0..n).collect::<Vec<_>>()))
            } else {
                assert_eq!(m.rows(), n, "embed_all: feature row mismatch");
                std::borrow::Cow::Borrowed(m)
            }
        }
        let mut hu = take(user_feats, graph.num_left());
        let mut hi = take(item_feats, graph.num_right());
        for p in 1..=self.num_steps() {
            let agg_u = neighborhood_mean_with(graph, Side::Left, &hi, self.cfg.aggregator, exec);
            let agg_i = neighborhood_mean_with(graph, Side::Right, &hu, self.cfg.aggregator, exec);
            let up = &self.user_steps[p - 1];
            let ip = &self.item_steps[p - 1];
            let new_hu = dense_step(store, &hu, &agg_u, up, self.cfg.activation, exec);
            let new_hi = dense_step(store, &hi, &agg_i, ip, self.cfg.activation, exec);
            hu = std::borrow::Cow::Owned(new_hu);
            hi = std::borrow::Cow::Owned(new_hi);
        }
        (hu.into_owned(), hi.into_owned())
    }
}

/// Concatenates per-chunk row blocks produced by
/// [`ParallelExecutor::map_chunks`] back into one matrix, handling the
/// zero-chunk (empty input) case.
fn concat_chunks(chunks: &[Matrix], cols: usize) -> Matrix {
    if chunks.is_empty() {
        return Matrix::zeros(0, cols);
    }
    let refs: Vec<&Matrix> = chunks.iter().collect();
    Matrix::concat_rows(&refs)
}

fn apply_activation(tape: &mut Tape, act: Activation, x: Var) -> Var {
    match act {
        Activation::LeakyRelu => tape.leaky_relu(x, 0.01),
        Activation::Relu => tape.relu(x),
        Activation::Tanh => tape.tanh(x),
        Activation::Identity => x,
    }
}

/// One dense update `h <- act([h | agg M] W + b)`, row-chunked over the
/// executor. Every output row is an independent dot-product accumulation
/// (the `ikj` matmul never mixes rows), so the chunked result is
/// bit-identical to the sequential one.
fn dense_step(
    store: &ParamStore,
    h_self: &Matrix,
    h_agg: &Matrix,
    params: &StepParams,
    act: Activation,
    exec: &ParallelExecutor,
) -> Matrix {
    let m = store.get(params.m);
    let w = store.get(params.w);
    let b = store.get(params.b);
    // Each chunk slices its rows in place (no gather copies), uses the
    // fused concat-matmul kernel (no `[h | agg M]` materialization), and
    // applies bias + activation in place on the output block.
    let chunks = exec.map_chunks(h_self.rows(), ROW_CHUNK, |_, range| {
        let transformed = h_agg.matmul_rows_range(range.clone(), m);
        let mut lin = Matrix::concat2_matmul_rows_range(h_self, range, &transformed, w);
        lin.add_row_broadcast_assign(b);
        match act {
            Activation::LeakyRelu => lin.map_assign(|v| if v > 0.0 { v } else { 0.01 * v }),
            Activation::Relu => lin.map_assign(|v| v.max(0.0)),
            Activation::Tanh => lin.map_assign(f32::tanh),
            Activation::Identity => {}
        }
        lin
    });
    concat_chunks(&chunks, w.cols())
}

/// Exact neighbourhood mean (or sum) for every vertex of `side`, given
/// the opposite side's current embeddings. Isolated vertices get zeros.
pub fn neighborhood_mean(
    graph: &BipartiteGraph,
    side: Side,
    opposite_embeddings: &Matrix,
    aggregator: Aggregator,
) -> Matrix {
    neighborhood_mean_with(graph, side, opposite_embeddings, aggregator, &ParallelExecutor::single())
}

/// [`neighborhood_mean`] with an explicit executor: vertices are
/// aggregated in fixed [`ROW_CHUNK`]-sized chunks merged in chunk order,
/// so the result is bit-identical at any worker count.
pub fn neighborhood_mean_with(
    graph: &BipartiteGraph,
    side: Side,
    opposite_embeddings: &Matrix,
    aggregator: Aggregator,
    exec: &ParallelExecutor,
) -> Matrix {
    let n = graph.num_vertices(side);
    let d = opposite_embeddings.cols();
    let chunks = exec.map_chunks(n, ROW_CHUNK, |_, range| {
        let mut out = Matrix::zeros(range.len(), d);
        for (local, v) in range.enumerate() {
            let (nbrs, _) = graph.neighbors(side, v);
            if nbrs.is_empty() {
                continue;
            }
            match aggregator {
                Aggregator::Mean | Aggregator::Sum => {
                    let inv = match aggregator {
                        Aggregator::Mean => 1.0 / nbrs.len() as f32,
                        _ => 1.0,
                    };
                    let row = out.row_mut(local);
                    for &nb in nbrs {
                        for (o, &e) in row.iter_mut().zip(opposite_embeddings.row(nb as usize)) {
                            *o += e * inv;
                        }
                    }
                }
                Aggregator::Max => {
                    let row = out.row_mut(local);
                    row.fill(f32::MIN);
                    for &nb in nbrs {
                        for (o, &e) in row.iter_mut().zip(opposite_embeddings.row(nb as usize)) {
                            if e > *o {
                                *o = e;
                            }
                        }
                    }
                }
            }
        }
        out
    });
    concat_chunks(&chunks, d)
}

/// The side of layer `l` in a sampled tree rooted at `root_side`.
#[inline]
fn side_at(root_side: Side, l: usize) -> Side {
    if l.is_multiple_of(2) {
        root_side
    } else {
        root_side.opposite()
    }
}

/// Fanout-samples the next layer, treating the null sentinel
/// (`graph.num_vertices(layer_side)`) as a vertex whose neighbours are
/// all null.
fn sample_layer(
    graph: &BipartiteGraph,
    layer_side: Side,
    vertices: &[usize],
    fanout: usize,
    mode: SamplingMode,
    rng: &mut impl Rng,
) -> Vec<usize> {
    let null_self = graph.num_vertices(layer_side);
    let null_next = graph.num_vertices(layer_side.opposite());
    let mut out = Vec::with_capacity(vertices.len() * fanout);
    for &v in vertices {
        if v == null_self {
            out.extend(std::iter::repeat_n(null_next, fanout));
            continue;
        }
        let sampled =
            hignn_graph::sample_neighbors(graph, layer_side, &[v], fanout, mode, rng);
        out.extend(sampled);
    }
    out
}

/// Appends one zero row (the null-vertex feature) to a feature matrix.
pub fn with_null_row(feats: &Matrix) -> Matrix {
    let zero = Matrix::zeros(1, feats.cols());
    Matrix::concat_rows(&[feats, &zero])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            4,
            3,
            vec![
                (0, 0, 1.0),
                (0, 1, 2.0),
                (1, 0, 1.0),
                (2, 2, 3.0),
                // user 3 is isolated
            ],
        )
    }

    fn toy_cfg() -> BipartiteSageConfig {
        BipartiteSageConfig {
            input_dim: 4,
            dim: 6,
            fanouts: vec![3, 2],
            sampling: SamplingMode::Uniform,
            ..Default::default()
        }
    }

    fn feats(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        init::xavier_uniform(rows, cols, &mut rng)
    }

    #[test]
    fn embed_batch_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let sage = BipartiteSage::new(&mut store, "sage", toy_cfg(), &mut rng);
        let g = toy_graph();
        let uf = with_null_row(&feats(4, 4, 2));
        let if_ = with_null_row(&feats(3, 4, 3));
        let mut tape = Tape::new(&store);
        let z = sage.embed_batch(&mut tape, &g, Side::Left, &[0, 1, 3], &uf, &if_, &mut rng);
        assert_eq!((z.rows(), z.cols()), (3, 6));
        assert!(tape.value(z).all_finite());
        // Item side too.
        let zi = sage.embed_batch(&mut tape, &g, Side::Right, &[0, 2], &uf, &if_, &mut rng);
        assert_eq!((zi.rows(), zi.cols()), (2, 6));
    }

    #[test]
    fn gradients_flow_to_all_steps() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let sage = BipartiteSage::new(&mut store, "sage", toy_cfg(), &mut rng);
        let g = toy_graph();
        let uf = with_null_row(&feats(4, 4, 5));
        let if_ = with_null_row(&feats(3, 4, 6));
        let mut tape = Tape::new(&store);
        let z = sage.embed_batch(&mut tape, &g, Side::Left, &[0, 1, 2], &uf, &if_, &mut rng);
        let loss = tape.sum_squares(z);
        let grads = tape.backward(loss);
        // Both user steps must receive gradients; item step 1 as well
        // (layer 1 holds items and is updated at p = 1).
        for p in &sage.user_steps {
            assert!(grads.get(p.w).is_some(), "missing user W grad");
        }
        assert!(grads.get(sage.item_steps[0].w).is_some(), "missing item W grad");
    }

    #[test]
    fn embed_all_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let sage = BipartiteSage::new(&mut store, "sage", toy_cfg(), &mut rng);
        let g = toy_graph();
        let uf = feats(4, 4, 8);
        let if_ = feats(3, 4, 9);
        let (zu1, zi1) = sage.embed_all(&store, &g, &uf, &if_);
        let (zu2, zi2) = sage.embed_all(&store, &g, &uf, &if_);
        assert_eq!(zu1.shape(), (4, 6));
        assert_eq!(zi1.shape(), (3, 6));
        assert_eq!(zu1, zu2);
        assert_eq!(zi1, zi2);
        assert!(zu1.all_finite() && zi1.all_finite());
    }

    #[test]
    fn embed_all_worker_count_does_not_change_bits() {
        // > 2 chunks of ROW_CHUNK rows so the parallel path really splits.
        let n = 600u32;
        let mut edges = Vec::new();
        for u in 0..n {
            for j in 0..3u32 {
                edges.push((u, u.wrapping_mul(7).wrapping_add(j * 131) % n, 1.0 + j as f32));
            }
        }
        let g = BipartiteGraph::from_edges(n as usize, n as usize, edges);
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let sage = BipartiteSage::new(&mut store, "sage", toy_cfg(), &mut rng);
        let uf = feats(n as usize, 4, 15);
        let if_ = feats(n as usize, 4, 16);
        let (zu1, zi1) = sage.embed_all(&store, &g, &uf, &if_);
        for workers in [2, 4, 8] {
            let exec = ParallelExecutor::new(workers);
            let (zu, zi) = sage.embed_all_with(&store, &g, &uf, &if_, &exec);
            assert_eq!(zu.data(), zu1.data(), "user side, workers = {workers}");
            assert_eq!(zi.data(), zi1.data(), "item side, workers = {workers}");
        }
    }

    #[test]
    fn embed_all_accepts_null_row_features() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let sage = BipartiteSage::new(&mut store, "sage", toy_cfg(), &mut rng);
        let g = toy_graph();
        let uf = feats(4, 4, 11);
        let if_ = feats(3, 4, 12);
        let (a, _) = sage.embed_all(&store, &g, &uf, &if_);
        let (b, _) = sage.embed_all(&store, &g, &with_null_row(&uf), &with_null_row(&if_));
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn shared_weights_halve_parameters() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut s1 = ParamStore::new();
        let _ = BipartiteSage::new(&mut s1, "a", toy_cfg(), &mut rng);
        let mut s2 = ParamStore::new();
        let cfg = BipartiteSageConfig { shared_weights: true, ..toy_cfg() };
        let _ = BipartiteSage::new(&mut s2, "b", cfg, &mut rng);
        assert_eq!(s2.len() * 2, s1.len());
    }

    #[test]
    fn neighborhood_mean_handles_isolated() {
        let g = toy_graph();
        let emb = Matrix::from_vec(3, 2, vec![1.0, 0.0, 3.0, 0.0, 5.0, 6.0]);
        let m = neighborhood_mean(&g, Side::Left, &emb, Aggregator::Mean);
        assert_eq!(m.row(0), &[2.0, 0.0]); // mean of items 0, 1
        assert_eq!(m.row(3), &[0.0, 0.0]); // isolated user
        let s = neighborhood_mean(&g, Side::Left, &emb, Aggregator::Sum);
        assert_eq!(s.row(0), &[4.0, 0.0]);
    }

    #[test]
    fn similar_users_get_similar_embeddings() {
        // Users 0 and 1 share item 0; user 2 is attached elsewhere. After
        // propagation (identity-free params aside), the structural signal
        // should make 0/1 closer than 0/2 on average across seeds.
        let g = BipartiteGraph::from_edges(
            3,
            4,
            vec![
                (0, 0, 5.0),
                (0, 1, 5.0),
                (1, 0, 5.0),
                (1, 1, 5.0),
                (2, 2, 5.0),
                (2, 3, 5.0),
            ],
        );
        let mut closer = 0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut store = ParamStore::new();
            let sage = BipartiteSage::new(&mut store, "s", toy_cfg(), &mut rng);
            let uf = feats(3, 4, seed + 100);
            let if_ = feats(4, 4, seed + 200);
            let (zu, _) = sage.embed_all(&store, &g, &uf, &if_);
            let d01 = zu.row_sq_dist(0, zu.row(1));
            let d02 = zu.row_sq_dist(0, zu.row(2));
            if d01 < d02 {
                closer += 1;
            }
        }
        assert!(closer >= 4, "structure not reflected: {closer}/5");
    }
}
