//! Topic-driven taxonomy construction (paper Section V).
//!
//! On a query-item graph, HiGNN's coarsening levels *are* the taxonomy:
//! level-`l` item clusters form the level-`l` topics, and the cluster
//! chain gives the parent links. Each topic is then labelled with its
//! most *representative* query (Eqs. 14-16):
//!
//! * `pop(q, t_k)` — how frequently `q` leads into topic `t_k`,
//! * `con(q, t_k)` — a softmax over BM25 relevances of `q` against each
//!   topic's concatenated item titles `D_k` (Eq. 16),
//! * `r(q, t_k) = sqrt(pop · con)` (Eq. 14).

use crate::stack::{build_hierarchy, Hierarchy, HignnConfig};
use hignn_graph::{BipartiteGraph, Side};
use hignn_text::Bm25Index;
use hignn_tensor::Matrix;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Configuration of taxonomy construction.
#[derive(Clone, Debug)]
pub struct TaxonomyConfig {
    /// The underlying HiGNN configuration (Section V uses `L = 4`,
    /// shared-weight GraphSAGE, and CH-guided cluster counts).
    pub hignn: HignnConfig,
    /// Representative queries kept per topic.
    pub descriptions_per_topic: usize,
    /// Cap on BM25 relevance before the softmax (numerical safety).
    pub max_relevance: f64,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        TaxonomyConfig {
            hignn: HignnConfig::default(),
            descriptions_per_topic: 3,
            max_relevance: 30.0,
        }
    }
}

/// One topic of the taxonomy.
#[derive(Clone, Debug)]
pub struct Topic {
    /// Cluster id within its level (vertex id in `G^l`'s right side).
    pub id: usize,
    /// Hierarchy level (1 = finest).
    pub level: usize,
    /// Original item ids in the topic.
    pub items: Vec<u32>,
    /// Queries whose strongest click mass lands in this topic.
    pub queries: Vec<u32>,
    /// The most representative query's text (empty if no query reaches
    /// the topic).
    pub description: String,
    /// Top representative queries by `r(q, t_k)`, best first.
    pub description_queries: Vec<u32>,
}

/// A hierarchical topic-driven taxonomy.
pub struct Taxonomy {
    /// The underlying HiGNN hierarchy.
    pub hierarchy: Hierarchy,
    /// `topics[l-1]` holds the topics of level `l`, indexed by cluster id.
    pub topics: Vec<Vec<Topic>>,
}

impl Taxonomy {
    /// Number of taxonomy levels.
    pub fn num_levels(&self) -> usize {
        self.topics.len()
    }

    /// Topics at `level` (1-based).
    pub fn level_topics(&self, level: usize) -> &[Topic] {
        &self.topics[level - 1]
    }

    /// The level-`level` topic id of an original item.
    pub fn item_topic(&self, level: usize, item: usize) -> usize {
        self.hierarchy.item_clusters_at(level).cluster_of(item) as usize
    }

    /// Original-item topic assignment for a whole level (cluster ids).
    pub fn item_assignment(&self, level: usize) -> Vec<u32> {
        let a = self.hierarchy.item_clusters_at(level);
        (0..self.hierarchy.num_items()).map(|i| a.cluster_of(i)).collect()
    }

    /// Parent topic id (at `level + 1`) of a topic, or `None` at the top
    /// level.
    pub fn parent(&self, level: usize, topic_id: usize) -> Option<usize> {
        if level >= self.num_levels() {
            return None;
        }
        Some(self.hierarchy.levels()[level].item_assignment.cluster_of(topic_id) as usize)
    }

    /// Child topic ids (at `level - 1`) of a topic.
    pub fn children(&self, level: usize, topic_id: usize) -> Vec<usize> {
        if level <= 1 {
            return Vec::new();
        }
        let assignment = &self.hierarchy.levels()[level - 1].item_assignment;
        (0..assignment.len())
            .filter(|&c| assignment.cluster_of(c) as usize == topic_id)
            .collect()
    }

    /// Renders the taxonomy as an indented tree (coarsest level first) —
    /// the Fig. 5 case-study view. `max_children` bounds the branches
    /// printed per topic, `max_depth` the levels shown.
    pub fn render(&self, max_children: usize, max_depth: usize) -> String {
        let mut out = String::new();
        let top = self.num_levels();
        for topic in self.level_topics(top).iter().take(max_children) {
            self.render_node(&mut out, top, topic.id, 0, max_children, max_depth);
        }
        out
    }

    fn render_node(
        &self,
        out: &mut String,
        level: usize,
        topic_id: usize,
        indent: usize,
        max_children: usize,
        max_depth: usize,
    ) {
        let topic = &self.topics[level - 1][topic_id];
        let desc = if topic.description.is_empty() { "(unnamed)" } else { &topic.description };
        let _ = writeln!(
            out,
            "{}- [L{} #{:>3}] \"{}\" ({} items)",
            "  ".repeat(indent),
            level,
            topic_id,
            desc,
            topic.items.len()
        );
        if indent + 1 >= max_depth || level <= 1 {
            return;
        }
        for child in self.children(level, topic_id).into_iter().take(max_children) {
            self.render_node(out, level - 1, child, indent + 1, max_children, max_depth);
        }
    }
}

/// Builds a taxonomy from a query-item graph.
///
/// `query_feats` / `item_feats` are the shared-space features (mean
/// word2vec vectors in the paper); `query_texts` provides description
/// strings; `query_tokens` / `item_tokens` the encoded token bags used by
/// popularity/BM25 scoring.
pub fn build_taxonomy(
    graph: &BipartiteGraph,
    query_feats: &Matrix,
    item_feats: &Matrix,
    query_texts: &[String],
    query_tokens: &[Vec<u32>],
    item_tokens: &[Vec<u32>],
    cfg: &TaxonomyConfig,
) -> Taxonomy {
    assert_eq!(query_texts.len(), graph.num_left(), "query text count");
    assert_eq!(item_tokens.len(), graph.num_right(), "item token count");
    let hierarchy = build_hierarchy(graph, query_feats, item_feats, &cfg.hignn);
    let mut topics = Vec::with_capacity(hierarchy.num_levels());
    for level in 1..=hierarchy.num_levels() {
        let assignment = hierarchy.item_clusters_at(level);
        let k = assignment.num_clusters();
        // Topic membership.
        let mut items: Vec<Vec<u32>> = vec![Vec::new(); k];
        for i in 0..graph.num_right() {
            items[assignment.cluster_of(i) as usize].push(i as u32);
        }
        // Click mass per (query, topic).
        let mut query_topic_clicks: Vec<HashMap<usize, f64>> =
            vec![HashMap::new(); graph.num_left()];
        let mut topic_clicks = vec![0f64; k];
        for &(q, i, w) in graph.edges() {
            let t = assignment.cluster_of(i as usize) as usize;
            *query_topic_clicks[q as usize].entry(t).or_insert(0.0) += w as f64;
            topic_clicks[t] += w as f64;
        }
        // Topic documents for BM25 (concatenated item title tokens).
        let docs: Vec<Vec<u32>> = items
            .iter()
            .map(|members| {
                members
                    .iter()
                    .flat_map(|&i| item_tokens[i as usize].iter().copied())
                    .collect()
            })
            .collect();
        let bm25 = Bm25Index::new(&docs);

        // Queries per topic: strongest click mass wins.
        let mut topic_queries: Vec<Vec<u32>> = vec![Vec::new(); k];
        for (q, clicks) in query_topic_clicks.iter().enumerate() {
            if let Some((&t, _)) = clicks
                .iter()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(a.0)))
            {
                topic_queries[t].push(q as u32);
            }
        }

        // Representativeness r(q, t) = sqrt(pop * con) for candidates.
        let mut level_topics = Vec::with_capacity(k);
        for t in 0..k {
            let mut scored: Vec<(f64, u32)> = Vec::new();
            for (q, clicks) in query_topic_clicks.iter().enumerate() {
                let Some(&mass) = clicks.get(&t) else { continue };
                let pop = (1.0 + mass).ln() / (1.0 + topic_clicks[t]).ln().max(1e-9);
                let rel_t = bm25.score(&query_tokens[q], t).min(cfg.max_relevance);
                // Softmax concentration (Eq. 16) over the topics the query
                // actually reaches plus t itself.
                let mut denom = 1.0f64;
                for &other in clicks.keys() {
                    denom += bm25.score(&query_tokens[q], other).min(cfg.max_relevance).exp();
                }
                let con = rel_t.exp() / denom;
                scored.push(((pop * con).max(0.0).sqrt(), q as u32));
            }
            scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
            let description_queries: Vec<u32> = scored
                .iter()
                .take(cfg.descriptions_per_topic)
                .map(|&(_, q)| q)
                .collect();
            let description = description_queries
                .first()
                .map(|&q| query_texts[q as usize].clone())
                .unwrap_or_default();
            level_topics.push(Topic {
                id: t,
                level,
                items: items[t].clone(),
                queries: topic_queries[t].clone(),
                description,
                description_queries,
            });
        }
        topics.push(level_topics);
    }
    // Consistency: every original item appears in exactly one topic per level.
    debug_assert!(topics.iter().all(|lvl| {
        lvl.iter().map(|t| t.items.len()).sum::<usize>() == graph.num_vertices(Side::Right)
    }));
    Taxonomy { hierarchy, topics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sage::BipartiteSageConfig;
    use crate::stack::{ClusterCounts, KMeansAlgo};
    use crate::trainer::SageTrainConfig;
    use hignn_graph::SamplingMode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two topic blocks: queries/items 0..n/2 on topic A with token 1,
    /// the rest on topic B with token 2.
    #[allow(clippy::type_complexity)]
    fn blocky() -> (BipartiteGraph, Matrix, Matrix, Vec<String>, Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let n = 24;
        let mut rng = StdRng::seed_from_u64(3);
        let mut edges = Vec::new();
        for q in 0..n as u32 {
            let base = if q < (n / 2) as u32 { 0 } else { n as u32 / 2 };
            for _ in 0..4 {
                edges.push((q, base + rng.gen_range(0..(n / 2) as u32), 1.0));
            }
        }
        let g = BipartiteGraph::from_edges(n, n, edges);
        // Features reflect topic (simulating word2vec means).
        let feat = |k: usize| {
            Matrix::from_fn(n, 8, |r, c| {
                let topic = if r < n / 2 { 0.5 } else { -0.5 };
                if c < 4 {
                    topic + 0.01 * ((r * 7 + c * 3 + k) % 13) as f32
                } else {
                    0.01 * ((r * 5 + c + k) % 11) as f32
                }
            })
        };
        let qt: Vec<Vec<u32>> =
            (0..n).map(|q| vec![if q < n / 2 { 1 } else { 2 }, 3]).collect();
        let it: Vec<Vec<u32>> =
            (0..n).map(|i| vec![if i < n / 2 { 1 } else { 2 }, 4]).collect();
        let texts: Vec<String> =
            (0..n).map(|q| format!("query-{} {}", q, if q < n / 2 { "alpha" } else { "beta" })).collect();
        (g, feat(0), feat(1), texts, qt, it)
    }

    fn tiny_cfg(levels: usize) -> TaxonomyConfig {
        TaxonomyConfig {
            hignn: HignnConfig {
                levels,
                sage: BipartiteSageConfig {
                    input_dim: 8,
                    dim: 8,
                    fanouts: vec![3, 2],
                    sampling: SamplingMode::Uniform,
                    shared_weights: true,
                    ..Default::default()
                },
                train: SageTrainConfig {
                    epochs: 3,
                    batch_edges: 32,
                    neg_pool: 12,
                    ..Default::default()
                },
                cluster_counts: ClusterCounts::Fixed(vec![(6, 6), (2, 2)]),
                kmeans: KMeansAlgo::Lloyd,
                normalize: true,
                seed: 9,
            },
            ..Default::default()
        }
    }

    #[test]
    fn builds_topics_with_descriptions() {
        let (g, qf, if_, texts, qt, it) = blocky();
        let tax = build_taxonomy(&g, &qf, &if_, &texts, &qt, &it, &tiny_cfg(2));
        assert_eq!(tax.num_levels(), 2);
        // Every item is in exactly one topic per level.
        for level in 1..=2 {
            let total: usize = tax.level_topics(level).iter().map(|t| t.items.len()).sum();
            assert_eq!(total, 24);
        }
        // Non-empty topics are labelled.
        for t in tax.level_topics(2) {
            if !t.items.is_empty() && !t.queries.is_empty() {
                assert!(!t.description.is_empty(), "topic {} unlabelled", t.id);
            }
        }
    }

    #[test]
    fn parent_child_links_are_consistent() {
        let (g, qf, if_, texts, qt, it) = blocky();
        let tax = build_taxonomy(&g, &qf, &if_, &texts, &qt, &it, &tiny_cfg(2));
        for t in tax.level_topics(1) {
            let p = tax.parent(1, t.id).unwrap();
            assert!(tax.children(2, p).contains(&t.id));
        }
        for t in tax.level_topics(2) {
            assert!(tax.parent(2, t.id).is_none());
        }
    }

    #[test]
    fn item_topics_match_assignment() {
        let (g, qf, if_, texts, qt, it) = blocky();
        let tax = build_taxonomy(&g, &qf, &if_, &texts, &qt, &it, &tiny_cfg(2));
        let a = tax.item_assignment(1);
        for (i, &t) in a.iter().enumerate() {
            assert!(tax.level_topics(1)[t as usize].items.contains(&(i as u32)));
            assert_eq!(tax.item_topic(1, i), t as usize);
        }
    }

    #[test]
    fn render_produces_tree_text() {
        let (g, qf, if_, texts, qt, it) = blocky();
        let tax = build_taxonomy(&g, &qf, &if_, &texts, &qt, &it, &tiny_cfg(2));
        let rendered = tax.render(5, 3);
        assert!(rendered.contains("[L2"), "{rendered}");
        assert!(rendered.contains("items)"));
    }

    #[test]
    fn descriptions_come_from_in_topic_queries() {
        let (g, qf, if_, texts, qt, it) = blocky();
        let tax = build_taxonomy(&g, &qf, &if_, &texts, &qt, &it, &tiny_cfg(2));
        for t in tax.level_topics(2) {
            for &q in &t.description_queries {
                // Any describing query must actually click into the topic.
                let clicks_in: f64 = g
                    .edges()
                    .iter()
                    .filter(|&&(eq, i, _)| {
                        eq == q && tax.item_topic(2, i as usize) == t.id
                    })
                    .map(|&(_, _, w)| w as f64)
                    .sum();
                assert!(clicks_in > 0.0, "query {q} does not reach topic {}", t.id);
            }
        }
    }
}
