//! Retry-with-exponential-backoff for transient faults.
//!
//! The persistence layer (checkpoint writes, HGHI save/load, metrics
//! report emission) runs for hours between durable commit points; a
//! momentary `EINTR`, a filesystem briefly returning `EBUSY`, or a
//! quota hiccup must cost one bounded retry, not the whole build. This
//! module supplies that layer:
//!
//! * [`RetryPolicy`] — how many retries and what backoff schedule;
//! * [`Sleeper`] — *injectable* waiting, so tests drive the schedule
//!   with a recording fake and never wall-sleep;
//! * [`with_retry`] — runs an operation, retrying only errors that
//!   [`HignnError::is_transient`] admits, with deterministic
//!   exponential backoff between attempts.
//!
//! ## Determinism
//!
//! The backoff schedule is a pure function of the policy and the
//! attempt number — no jitter, no clock reads — so a retried run makes
//! exactly the same attempt sequence every time, and a recovered
//! operation leaves bitwise-identical artifacts (atomic writes are
//! all-or-nothing, so a failed attempt leaves nothing behind to
//! perturb the successful one).
//!
//! ## Observability
//!
//! Every retry and every recovery increments `hignn-obs` counters
//! (`retry.attempts`, `retry.recovered`, `retry.exhausted`, plus a
//! per-site `retry.attempts.<site>`), so operators can see a flaky
//! disk in the run report long before it becomes fatal.

use crate::error::HignnError;
use std::time::Duration;

/// How [`with_retry`] schedules re-attempts of a transient failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Upper bound the exponential schedule saturates at.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three retries at 50ms/100ms/200ms: rides out momentary faults
    /// without stalling a supervisor-observed process for seconds.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-runtime behaviour).
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..Default::default() }
    }

    /// The default schedule with a caller-chosen retry budget
    /// (the CLI's `--max-retries` knob).
    pub fn with_max_retries(max_retries: u32) -> Self {
        RetryPolicy { max_retries, ..Default::default() }
    }

    /// The deterministic backoff before retry number `retry` (0-based):
    /// `base_delay * 2^retry`, saturating at `max_delay`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_delay.checked_mul(factor).unwrap_or(self.max_delay).min(self.max_delay)
    }
}

/// Injectable waiting between retry attempts.
///
/// Production uses [`WallSleeper`]; tests use [`RecordingSleeper`] so
/// the whole backoff schedule is asserted without any wall-clock sleep
/// (an acceptance criterion of the chaos campaign).
pub trait Sleeper: Sync {
    /// Waits for `d` (or pretends to).
    fn sleep(&self, d: Duration);
}

/// Real wall-clock sleeping via `std::thread::sleep`.
#[derive(Clone, Copy, Debug, Default)]
pub struct WallSleeper;

impl Sleeper for WallSleeper {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A [`Sleeper`] that records every requested delay and returns
/// immediately, so tests assert the full backoff schedule without a
/// single wall-clock sleep.
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    slept: std::sync::Mutex<Vec<Duration>>,
}

impl RecordingSleeper {
    /// A fresh recorder with no sleeps.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every delay requested so far, in order.
    pub fn slept(&self) -> Vec<Duration> {
        self.slept.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

impl Sleeper for RecordingSleeper {
    fn sleep(&self, d: Duration) {
        self.slept.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(d);
    }
}

/// Runs `op`, retrying transient failures per `policy` with backoff via
/// `sleeper`. `site` names the operation in retry counters and error
/// context (e.g. `checkpoint.save_level`).
///
/// Fatal errors ([`HignnError::is_transient`] = false) return
/// immediately; transient errors retry up to `policy.max_retries`
/// times, then return the last error unchanged (its exit code — 3 for
/// I/O — is the documented "retries exhausted" outcome).
pub fn with_retry<T>(
    policy: &RetryPolicy,
    sleeper: &dyn Sleeper,
    site: &str,
    mut op: impl FnMut() -> Result<T, HignnError>,
) -> Result<T, HignnError> {
    let mut retry = 0u32;
    loop {
        match op() {
            Ok(value) => {
                if retry > 0 && hignn_obs::enabled() {
                    hignn_obs::counter_add("retry.recovered", 1);
                }
                return Ok(value);
            }
            Err(err) if err.is_transient() && retry < policy.max_retries => {
                if hignn_obs::enabled() {
                    hignn_obs::counter_add("retry.attempts", 1);
                    hignn_obs::counter_add(&format!("retry.attempts.{site}"), 1);
                }
                if hignn_obs::log_enabled() {
                    hignn_obs::log_event(
                        "retry",
                        &[
                            ("site", hignn_obs::LogValue::Str(site.to_string())),
                            ("retry", hignn_obs::LogValue::Uint(u64::from(retry))),
                            ("error", hignn_obs::LogValue::Str(err.to_string())),
                        ],
                    );
                }
                sleeper.sleep(policy.backoff(retry));
                retry += 1;
            }
            Err(err) => {
                if err.is_transient() && hignn_obs::enabled() {
                    hignn_obs::counter_add("retry.exhausted", 1);
                }
                return Err(err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn transient() -> HignnError {
        HignnError::io("probe", io::Error::new(io::ErrorKind::Interrupted, "EINTR"))
    }

    fn fatal() -> HignnError {
        HignnError::corrupt("probe", "bad crc")
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(300),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(50));
        assert_eq!(p.backoff(1), Duration::from_millis(100));
        assert_eq!(p.backoff(2), Duration::from_millis(200));
        assert_eq!(p.backoff(3), Duration::from_millis(300), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(300), "shift overflow saturates");
    }

    #[test]
    fn transient_errors_retry_until_success_with_recorded_backoff() {
        let sleeper = RecordingSleeper::new();
        let attempts = AtomicU32::new(0);
        let out = with_retry(&RetryPolicy::default(), &sleeper, "test.site", || {
            if attempts.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(transient())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(attempts.load(Ordering::Relaxed), 3);
        assert_eq!(
            sleeper.slept(),
            vec![Duration::from_millis(50), Duration::from_millis(100)],
            "deterministic exponential schedule"
        );
    }

    #[test]
    fn fatal_errors_never_retry() {
        let sleeper = RecordingSleeper::new();
        let attempts = AtomicU32::new(0);
        let out: Result<(), _> = with_retry(&RetryPolicy::default(), &sleeper, "test.site", || {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(fatal())
        });
        assert_eq!(out.unwrap_err().exit_code(), 4);
        assert_eq!(attempts.load(Ordering::Relaxed), 1, "fatal error must not retry");
        assert!(sleeper.slept().is_empty());
    }

    #[test]
    fn exhausted_retries_return_the_last_transient_error() {
        let sleeper = RecordingSleeper::new();
        let attempts = AtomicU32::new(0);
        let policy = RetryPolicy::with_max_retries(2);
        let out: Result<(), _> = with_retry(&policy, &sleeper, "test.site", || {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(transient())
        });
        assert_eq!(out.unwrap_err().exit_code(), 3, "exhausted transient surfaces as I/O");
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "initial + 2 retries");
        assert_eq!(sleeper.slept().len(), 2);
    }

    #[test]
    fn zero_retry_policy_is_the_legacy_behaviour() {
        let sleeper = RecordingSleeper::new();
        let attempts = AtomicU32::new(0);
        let out: Result<(), _> = with_retry(&RetryPolicy::none(), &sleeper, "test.site", || {
            attempts.fetch_add(1, Ordering::Relaxed);
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(attempts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retry_counters_surface_through_obs() {
        // Serialise against other obs-touching tests via a named lock in
        // the registry? The obs global is test-shared; reset and assert
        // deltas to stay robust.
        hignn_obs::global().reset();
        hignn_obs::set_enabled(true);
        let sleeper = RecordingSleeper::new();
        let attempts = AtomicU32::new(0);
        let _ = with_retry(&RetryPolicy::default(), &sleeper, "unit.site", || {
            if attempts.fetch_add(1, Ordering::Relaxed) < 1 {
                Err(transient())
            } else {
                Ok(())
            }
        });
        let reg = hignn_obs::global();
        assert!(reg.counter_get("retry.attempts") >= 1);
        assert!(reg.counter_get("retry.attempts.unit.site") >= 1);
        assert!(reg.counter_get("retry.recovered") >= 1);
        hignn_obs::set_enabled(false);
        hignn_obs::global().reset();
    }
}
