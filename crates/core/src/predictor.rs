//! Supervised deep neural network with HiGNN (paper Section IV.A, Fig. 2).
//!
//! The predictor concatenates, per `(user, item)` sample:
//!
//! * the hierarchical user preference `z_u^H` (optional — `HIA-only`
//!   ablation drops it),
//! * the hierarchical item attractiveness `z_i^H` (optional — `HUP-only`
//!   drops it),
//! * user profile features (gender, purchasing power, ...),
//! * item statistic features (click count, purchase count, ...),
//!
//! and feeds the result through fully connected layers (the paper uses
//! 256/128/64 with leaky ReLU, sigmoid output, cross-entropy loss Eq. 7,
//! lr 1e-3, batch 1024, L2 regularisation).

use hignn_tensor::nn::{Activation, Mlp};
use hignn_tensor::optim::{Adam, Optimizer};
use hignn_tensor::{stable_sigmoid, Matrix, ParamStore, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labelled `(user, item)` pair (structurally identical to
/// `hignn_datasets::Sample`; the two crates stay decoupled because the
/// core library must not depend on the synthetic data generators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// User id.
    pub user: u32,
    /// Item id.
    pub item: u32,
    /// Conversion label.
    pub label: bool,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(user: u32, item: u32, label: bool) -> Self {
        Sample { user, item, label }
    }
}

/// The per-entity feature blocks the predictor consumes.
#[derive(Clone, Copy)]
pub struct FeatureBlocks<'a> {
    /// Hierarchical user embeddings (`num_users x d_u^H`), or `None` for
    /// the HIA-only ablation.
    pub user_hier: Option<&'a Matrix>,
    /// Hierarchical item embeddings, or `None` for HUP-only.
    pub item_hier: Option<&'a Matrix>,
    /// User profile features (`num_users x p`).
    pub user_profiles: &'a Matrix,
    /// Item statistic features (`num_items x q`).
    pub item_stats: &'a Matrix,
}

impl<'a> FeatureBlocks<'a> {
    /// Total input dimensionality per sample.
    pub fn input_dim(&self) -> usize {
        self.user_hier.map_or(0, Matrix::cols)
            + self.item_hier.map_or(0, Matrix::cols)
            + self.user_profiles.cols()
            + self.item_stats.cols()
    }

    /// Assembles the input matrix for a slice of samples.
    pub fn assemble(&self, samples: &[Sample]) -> Matrix {
        let d = self.input_dim();
        let mut out = Matrix::zeros(samples.len(), d);
        for (k, s) in samples.iter().enumerate() {
            let row = out.row_mut(k);
            let mut off = 0;
            if let Some(uh) = self.user_hier {
                let src = uh.row(s.user as usize);
                row[off..off + src.len()].copy_from_slice(src);
                off += src.len();
            }
            if let Some(ih) = self.item_hier {
                let src = ih.row(s.item as usize);
                row[off..off + src.len()].copy_from_slice(src);
                off += src.len();
            }
            let src = self.user_profiles.row(s.user as usize);
            row[off..off + src.len()].copy_from_slice(src);
            off += src.len();
            let src = self.item_stats.row(s.item as usize);
            row[off..off + src.len()].copy_from_slice(src);
        }
        out
    }
}

/// Hyper-parameters of the prediction head.
#[derive(Clone, Debug)]
pub struct PredictorConfig {
    /// Hidden layer widths (paper: 256, 128, 64).
    pub hidden: Vec<usize>,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Minibatch size (paper: 1024).
    pub batch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Decoupled weight decay (the paper's L2 regularisation).
    pub weight_decay: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            hidden: vec![256, 128, 64],
            lr: 1e-3,
            batch: 1024,
            epochs: 3,
            weight_decay: 1e-5,
            seed: 0,
        }
    }
}

/// A trained CVR/CTR prediction network.
pub struct CvrPredictor {
    mlp: Mlp,
    store: ParamStore,
    input_dim: usize,
    /// Mean training loss per epoch (diagnostic).
    pub epoch_losses: Vec<f32>,
}

impl CvrPredictor {
    /// Trains the predictor on `train` samples with the given feature
    /// blocks.
    pub fn train(features: &FeatureBlocks, train: &[Sample], cfg: &PredictorConfig) -> Self {
        assert!(!train.is_empty(), "CvrPredictor: empty training set");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF17);
        let input_dim = features.input_dim();
        let mut dims = vec![input_dim];
        dims.extend_from_slice(&cfg.hidden);
        dims.push(1);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "cvr", &dims, Activation::LeakyRelu, &mut rng);
        let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);

        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut total = 0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch) {
                let batch: Vec<Sample> = chunk.iter().map(|&k| train[k]).collect();
                let x = features.assemble(&batch);
                let targets: Vec<f32> =
                    batch.iter().map(|s| if s.label { 1.0 } else { 0.0 }).collect();
                let mut tape = Tape::new(&store);
                let xv = tape.input(x);
                let logits = mlp.forward(&mut tape, xv);
                let loss = tape.bce_with_logits(logits, &targets);
                total += tape.scalar(loss) as f64;
                batches += 1;
                let grads = tape.backward(loss);
                opt.step(&mut store, &grads);
            }
            epoch_losses.push((total / batches.max(1) as f64) as f32);
        }
        CvrPredictor { mlp, store, input_dim, epoch_losses }
    }

    /// Predicted conversion probabilities for `samples`.
    pub fn predict(&self, features: &FeatureBlocks, samples: &[Sample]) -> Vec<f32> {
        assert_eq!(features.input_dim(), self.input_dim, "feature dim mismatch");
        // Chunked inference keeps peak memory bounded.
        let mut out = Vec::with_capacity(samples.len());
        for chunk in samples.chunks(4096) {
            let x = features.assemble(chunk);
            let logits = self.mlp.infer(&self.store, &x);
            out.extend((0..chunk.len()).map(|k| stable_sigmoid(logits.get(k, 0))));
        }
        out
    }

    /// Number of trainable scalars.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hignn_metrics::auc;
    use hignn_tensor::init;

    /// A synthetic task where the label depends on the dot product of the
    /// user and item "hierarchical" embeddings.
    fn synthetic() -> (Matrix, Matrix, Matrix, Matrix, Vec<Sample>, Vec<Sample>) {
        let mut rng = StdRng::seed_from_u64(3);
        let nu = 60;
        let ni = 40;
        let uh = init::xavier_uniform(nu, 6, &mut rng);
        let ih = init::xavier_uniform(ni, 6, &mut rng);
        let up = Matrix::zeros(nu, 2);
        let is = Matrix::zeros(ni, 2);
        let mut samples = Vec::new();
        for u in 0..nu {
            for i in 0..ni {
                let dot: f32 = uh.row(u).iter().zip(ih.row(i)).map(|(a, b)| a * b).sum();
                let label = dot > 0.0;
                samples.push(Sample { user: u as u32, item: i as u32, label });
            }
        }
        // Deterministic split.
        let test = samples.split_off(samples.len() * 4 / 5);
        (uh, ih, up, is, samples, test)
    }

    #[test]
    fn learns_dot_product_signal() {
        let (uh, ih, up, is, train, test) = synthetic();
        let features = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let cfg = PredictorConfig {
            hidden: vec![32, 16],
            batch: 128,
            epochs: 12,
            lr: 3e-3,
            ..Default::default()
        };
        let model = CvrPredictor::train(&features, &train, &cfg);
        let probs = model.predict(&features, &test);
        let labels: Vec<bool> = test.iter().map(|s| s.label).collect();
        let a = auc(&probs, &labels);
        assert!(a > 0.9, "AUC {a}");
        assert!(model.epoch_losses.last().unwrap() < &model.epoch_losses[0]);
    }

    #[test]
    fn ablations_change_input_dim() {
        let (uh, ih, up, is, ..) = synthetic();
        let full = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let hup = FeatureBlocks { item_hier: None, ..full };
        let hia = FeatureBlocks { user_hier: None, ..full };
        assert_eq!(full.input_dim(), 6 + 6 + 2 + 2);
        assert_eq!(hup.input_dim(), 6 + 2 + 2);
        assert_eq!(hia.input_dim(), 6 + 2 + 2);
    }

    #[test]
    fn assemble_layout() {
        let uh = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let ih = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let up = Matrix::from_vec(1, 1, vec![5.0]);
        let is = Matrix::from_vec(1, 1, vec![6.0]);
        let f = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let x = f.assemble(&[Sample { user: 0, item: 0, label: true }]);
        assert_eq!(x.row(0), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn rejects_empty_training() {
        let up = Matrix::zeros(1, 1);
        let is = Matrix::zeros(1, 1);
        let f = FeatureBlocks { user_hier: None, item_hier: None, user_profiles: &up, item_stats: &is };
        CvrPredictor::train(&f, &[], &PredictorConfig::default());
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn rejects_mismatched_features_at_predict() {
        let up = Matrix::zeros(2, 1);
        let is = Matrix::zeros(2, 1);
        let f = FeatureBlocks { user_hier: None, item_hier: None, user_profiles: &up, item_stats: &is };
        let cfg = PredictorConfig { hidden: vec![4], epochs: 1, batch: 4, ..Default::default() };
        let model = CvrPredictor::train(
            &f,
            &[Sample { user: 0, item: 0, label: true }, Sample { user: 1, item: 1, label: false }],
            &cfg,
        );
        let uh = Matrix::zeros(2, 3);
        let f2 = FeatureBlocks { user_hier: Some(&uh), ..f };
        model.predict(&f2, &[Sample { user: 0, item: 0, label: true }]);
    }
}
