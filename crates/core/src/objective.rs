//! Pluggable training objectives: one substrate, many losses.
//!
//! [`crate::trainer::train_unsupervised_checked`] owns everything a loss
//! does *not* care about — epoch shuffling, minibatching, gradient
//! sharding, the per-shard RNG streams, workspace pooling, the optimizer
//! step, and supervision hooks. What happens *inside* one shard's tape is
//! delegated to an [`Objective`]: it draws its negatives, embeds its
//! vertices, and composes the scalar loss [`hignn_tensor::Var`] that the
//! substrate differentiates. New training scenarios are a trait impl,
//! not a trainer fork.
//!
//! Three objectives ship:
//!
//! * [`EdgeReconstruction`] — the paper's Eq. 5 loss, *extracted* from
//!   the pre-objective trainer. Its shard pass consumes the RNG and
//!   builds the tape in exactly the old order, so a default-configured
//!   run is bitwise identical to the pre-refactor trainer at any thread
//!   count (asserted against a golden hash in the determinism suite).
//! * [`HierarchicalContrastive`] — InfoNCE-style alignment in the spirit
//!   of HGCL: each edge's endpoints are positives for each other,
//!   pool-sampled vertices are negatives, symmetrised over both sides.
//!   Applied per level, the cross-level alignment emerges from the
//!   Algorithm-1 recursion: level `l`'s anchors are embeddings of the
//!   Eq. 6 centroids produced by level `l-1`.
//! * [`ClusterConstraint`] — Eq. 5 plus a clustering regulariser
//!   (`λ · mean‖z_u − z_i‖²` over positive edges). Minimising the
//!   within-pair spread pulls each edge's endpoints toward their common
//!   Eq. 6 centroid: for any cluster, the centroid objective
//!   `Σ_v ‖z_v − z̄‖²` equals the pairwise spread `Σ_{v,w} ‖z_v − z_w‖² / 2|C|`,
//!   and connected pairs are the co-clustering evidence available during
//!   training (after "Efficient Bipartite Graph Embedding Induced by
//!   Clustering Constraints").
//!
//! ## Determinism obligations
//!
//! An objective's `shard_loss` receives a shard-local RNG seeded purely
//! from `(seed, epoch, batch, shard)`. Everything it does must depend
//! only on its inputs — graph, features, config, that RNG — never on
//! thread scheduling, pointer values, or iteration order of unordered
//! containers. Obeying this makes any new objective automatically
//! bit-identical across worker counts and automatically compatible with
//! the chaos harness's re-execution recovery.

use crate::sage::{BipartiteSage, FeatureSource};
use crate::trainer::SageTrainConfig;
use hignn_graph::{BipartiteGraph, NegativeSampler, Side};
use hignn_tensor::nn::Mlp;
use hignn_tensor::{Matrix, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::Rng;

/// Which objective trains each level — the configuration-level
/// description, carried in [`SageTrainConfig::objective`], recorded in
/// checkpoint meta (v4), and selected on the CLI via `--objective`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum ObjectiveSpec {
    /// The paper's Eq. 5 edge-reconstruction loss (the default).
    #[default]
    EdgeReconstruction,
    /// InfoNCE-style cross-level contrastive alignment (HGCL).
    HierarchicalContrastive {
        /// Softmax temperature `τ` (similarities are divided by it).
        temperature: f32,
    },
    /// Eq. 5 plus the clustering-constraint regulariser.
    ClusterConstraint {
        /// Weight `λ` of the pair-spread penalty.
        lambda: f32,
    },
}

impl ObjectiveSpec {
    /// The identity of this objective (hyper-parameters stripped).
    pub fn kind(&self) -> ObjectiveKind {
        match self {
            ObjectiveSpec::EdgeReconstruction => ObjectiveKind::Edge,
            ObjectiveSpec::HierarchicalContrastive { .. } => ObjectiveKind::Contrastive,
            ObjectiveSpec::ClusterConstraint { .. } => ObjectiveKind::Cluster,
        }
    }

    /// Parses a CLI token. Accepts the three kind names with default
    /// hyper-parameters; anything else is a usage error.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "edge" => Ok(ObjectiveSpec::EdgeReconstruction),
            "contrastive" => {
                Ok(ObjectiveSpec::HierarchicalContrastive { temperature: DEFAULT_TEMPERATURE })
            }
            "cluster" => Ok(ObjectiveSpec::ClusterConstraint { lambda: DEFAULT_LAMBDA }),
            other => Err(format!(
                "unknown objective `{other}` (expected edge, contrastive, or cluster)"
            )),
        }
    }

    /// Builds the runtime objective for `graph` (constructing its
    /// negative samplers once per training run).
    pub fn instantiate(&self, graph: &BipartiteGraph) -> Box<dyn Objective> {
        match *self {
            ObjectiveSpec::EdgeReconstruction => Box::new(EdgeReconstruction::new(graph)),
            ObjectiveSpec::HierarchicalContrastive { temperature } => {
                Box::new(HierarchicalContrastive::new(graph, temperature))
            }
            ObjectiveSpec::ClusterConstraint { lambda } => {
                Box::new(ClusterConstraint::new(graph, lambda))
            }
        }
    }
}

/// Default softmax temperature for `--objective contrastive`. Dot
/// products are unnormalised, so the temperature is kept moderate.
pub const DEFAULT_TEMPERATURE: f32 = 0.5;

/// Default regulariser weight for `--objective cluster`.
pub const DEFAULT_LAMBDA: f32 = 0.1;

/// An objective's identity: names the checkpoint-meta id, the CLI token,
/// and the objective-namespaced observability keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectiveKind {
    /// Eq. 5 edge reconstruction.
    Edge,
    /// Hierarchical contrastive (InfoNCE).
    Contrastive,
    /// Edge reconstruction + clustering constraint.
    Cluster,
}

impl ObjectiveKind {
    /// Stable numeric id recorded in checkpoint meta (v4+). Never renumber.
    pub fn id(self) -> u64 {
        match self {
            ObjectiveKind::Edge => 0,
            ObjectiveKind::Contrastive => 1,
            ObjectiveKind::Cluster => 2,
        }
    }

    /// Inverse of [`ObjectiveKind::id`].
    pub fn from_id(id: u64) -> Option<Self> {
        match id {
            0 => Some(ObjectiveKind::Edge),
            1 => Some(ObjectiveKind::Contrastive),
            2 => Some(ObjectiveKind::Cluster),
            _ => None,
        }
    }

    /// The CLI token (`--objective <name>`).
    pub fn name(self) -> &'static str {
        match self {
            ObjectiveKind::Edge => "edge",
            ObjectiveKind::Contrastive => "contrastive",
            ObjectiveKind::Cluster => "cluster",
        }
    }

    /// Objective-namespaced counter: minibatches trained under this loss.
    pub fn obs_batches(self) -> &'static str {
        match self {
            ObjectiveKind::Edge => "objective.edge.batches",
            ObjectiveKind::Contrastive => "objective.contrastive.batches",
            ObjectiveKind::Cluster => "objective.cluster.batches",
        }
    }

    /// Objective-namespaced histogram: per-minibatch loss.
    pub fn obs_batch_loss(self) -> &'static str {
        match self {
            ObjectiveKind::Edge => "objective.edge.batch_loss",
            ObjectiveKind::Contrastive => "objective.contrastive.batch_loss",
            ObjectiveKind::Cluster => "objective.cluster.batch_loss",
        }
    }

    /// Objective-namespaced histogram: per-minibatch gradient L2 norm.
    pub fn obs_grad_norm(self) -> &'static str {
        match self {
            ObjectiveKind::Edge => "objective.edge.grad_norm",
            ObjectiveKind::Contrastive => "objective.contrastive.grad_norm",
            ObjectiveKind::Cluster => "objective.cluster.grad_norm",
        }
    }

    /// Objective-namespaced series: mean loss per epoch.
    pub fn obs_epoch_loss(self) -> &'static str {
        match self {
            ObjectiveKind::Edge => "objective.edge.epoch_loss",
            ObjectiveKind::Contrastive => "objective.contrastive.epoch_loss",
            ObjectiveKind::Cluster => "objective.cluster.epoch_loss",
        }
    }
}

/// Everything a shard pass may read, shared immutably across workers.
pub struct ObjectiveCtx<'a> {
    /// Parameter store holding the GraphSAGE module and scorer.
    pub store: &'a ParamStore,
    /// The GraphSAGE module being trained.
    pub sage: &'a BipartiteSage,
    /// The similarity MLP `f` (objectives that score pairs use it;
    /// purely-embedding objectives may ignore it).
    pub scorer: &'a Mlp,
    /// The bipartite graph of this level.
    pub graph: &'a BipartiteGraph,
    /// User-side feature source (fixed matrix or trainable table).
    pub user_src: FeatureSource<'a>,
    /// Item-side feature source.
    pub item_src: FeatureSource<'a>,
    /// The training hyper-parameters.
    pub cfg: &'a SageTrainConfig,
}

/// One shard's slice of a minibatch.
pub struct ShardBatch<'a> {
    /// User endpoint of each positive edge.
    pub users: &'a [usize],
    /// Item endpoint of each positive edge.
    pub items: &'a [usize],
    /// Transformed positive edge weights `ln(1 + S(u,i))`.
    pub weights: &'a [f32],
    /// Batch-wide negative-pair weight stand-in `γ` (identical across
    /// shards of a batch regardless of decomposition).
    pub gamma: f32,
}

/// A training loss over one shard of positive edges.
///
/// Implementations must honour the determinism obligations in the module
/// docs: every random decision comes from the provided shard RNG, and
/// the tape op sequence is a pure function of the inputs.
pub trait Objective: Send + Sync {
    /// This objective's identity (checkpoint meta, obs namespacing).
    fn kind(&self) -> ObjectiveKind;

    /// Builds this shard's scalar loss on `tape` and returns it. The
    /// substrate differentiates, scales by the shard's row fraction, and
    /// reduces across shards.
    fn shard_loss(
        &self,
        ctx: &ObjectiveCtx<'_>,
        tape: &mut Tape<'_>,
        batch: &ShardBatch<'_>,
        rng: &mut StdRng,
    ) -> Var;
}

// ---------------------------------------------------------------------
// Shared shard plumbing.

/// Draws both sides' negative pools and embeds positives + negatives, in
/// the fixed order every objective shares (and the pre-refactor trainer
/// used): sample negative users, sample negative items, embed positive
/// users, positive items, negative users, negative items.
///
/// Returns `(zu, zi, zun, zin, pool)`.
#[allow(clippy::type_complexity)]
fn embed_with_negatives(
    ctx: &ObjectiveCtx<'_>,
    tape: &mut Tape<'_>,
    batch: &ShardBatch<'_>,
    neg_user_sampler: &NegativeSampler,
    neg_item_sampler: &NegativeSampler,
    rng: &mut StdRng,
) -> (Var, Var, Var, Var, usize) {
    let cfg = ctx.cfg;
    let pool = cfg.neg_pool.max(cfg.neg_users.max(cfg.neg_items));
    let neg_users: Vec<usize> = neg_user_sampler.sample_many(pool, rng);
    let neg_items: Vec<usize> = neg_item_sampler.sample_many(pool, rng);

    let zu = ctx.sage.embed_batch_src(
        tape, ctx.graph, Side::Left, batch.users, ctx.user_src, ctx.item_src, rng,
    );
    let zi = ctx.sage.embed_batch_src(
        tape, ctx.graph, Side::Right, batch.items, ctx.user_src, ctx.item_src, rng,
    );
    let zun = ctx.sage.embed_batch_src(
        tape, ctx.graph, Side::Left, &neg_users, ctx.user_src, ctx.item_src, rng,
    );
    let zin = ctx.sage.embed_batch_src(
        tape, ctx.graph, Side::Right, &neg_items, ctx.user_src, ctx.item_src, rng,
    );
    (zu, zi, zun, zin, pool)
}

/// Pairs every positive row with `q` pool draws: returns parallel
/// `(pool_idx, pos_idx)` index vectors of length `n * q`.
fn gather_pairs(n: usize, q: usize, pool: usize, rng: &mut StdRng) -> (Vec<usize>, Vec<usize>) {
    let mut pool_idx = Vec::with_capacity(n * q);
    let mut pos_idx = Vec::with_capacity(n * q);
    for k in 0..n {
        for _ in 0..q {
            pool_idx.push(rng.gen_range(0..pool));
            pos_idx.push(k);
        }
    }
    (pool_idx, pos_idx)
}

// ---------------------------------------------------------------------
// Edge reconstruction (Eq. 5).

/// The paper's Eq. 5 edge-reconstruction objective — the extracted
/// pre-refactor trainer loss, bit-for-bit.
pub struct EdgeReconstruction {
    neg_user_sampler: NegativeSampler,
    neg_item_sampler: NegativeSampler,
}

impl EdgeReconstruction {
    /// Builds the objective and its degree-biased negative samplers.
    pub fn new(graph: &BipartiteGraph) -> Self {
        EdgeReconstruction {
            neg_user_sampler: NegativeSampler::degree_biased(graph, Side::Left),
            neg_item_sampler: NegativeSampler::degree_biased(graph, Side::Right),
        }
    }

    /// The full Eq. 5 shard loss, additionally returning the positive
    /// embeddings so composed objectives (clustering constraint) can
    /// regularise them without re-embedding.
    fn edge_loss_parts(
        &self,
        ctx: &ObjectiveCtx<'_>,
        tape: &mut Tape<'_>,
        batch: &ShardBatch<'_>,
        rng: &mut StdRng,
    ) -> (Var, Var, Var) {
        let cfg = ctx.cfg;
        let n = batch.users.len();
        let (zu, zi, zun, zin, pool) = embed_with_negatives(
            ctx,
            tape,
            batch,
            &self.neg_user_sampler,
            &self.neg_item_sampler,
            rng,
        );

        // Positive scores.
        let w_col = tape.input(Matrix::column_vector(batch.weights));
        let pos_in = tape.concat_cols(&[zu, zi, w_col]);
        let pos_logits = ctx.scorer.forward(tape, pos_in);
        let pos_targets = vec![1.0f32; n];
        let pos_loss = tape.bce_with_logits(pos_logits, &pos_targets);

        // Negative pairs: each positive edge's vertex against Q pool draws.
        let gamma_col =
            |tape: &mut Tape, rows: usize, gamma: f32| tape.input(Matrix::full(rows, 1, gamma));

        let (pool_idx, pos_idx) = gather_pairs(n, cfg.neg_users, pool, rng);
        let zun_g = tape.gather_rows(zun, &pool_idx);
        let zi_g = tape.gather_rows(zi, &pos_idx);
        let g_col = gamma_col(tape, pool_idx.len(), batch.gamma);
        let negu_in = tape.concat_cols(&[zun_g, zi_g, g_col]);
        let negu_logits = ctx.scorer.forward(tape, negu_in);
        let negu_targets = vec![0.0f32; pool_idx.len()];
        let negu_loss = tape.bce_with_logits(negu_logits, &negu_targets);

        let (pool_idx, pos_idx) = gather_pairs(n, cfg.neg_items, pool, rng);
        let zin_g = tape.gather_rows(zin, &pool_idx);
        let zu_g = tape.gather_rows(zu, &pos_idx);
        let g_col = gamma_col(tape, pool_idx.len(), batch.gamma);
        let negi_in = tape.concat_cols(&[zu_g, zin_g, g_col]);
        let negi_logits = ctx.scorer.forward(tape, negi_in);
        let negi_targets = vec![0.0f32; pool_idx.len()];
        let negi_loss = tape.bce_with_logits(negi_logits, &negi_targets);

        // J = pos + Q_u * E[neg_u] + Q_i * E[neg_i].
        let negu_scaled = tape.scale(negu_loss, cfg.neg_users as f32);
        let negi_scaled = tape.scale(negi_loss, cfg.neg_items as f32);
        let loss = tape.add(pos_loss, negu_scaled);
        let loss = tape.add(loss, negi_scaled);
        (loss, zu, zi)
    }
}

impl Objective for EdgeReconstruction {
    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::Edge
    }

    fn shard_loss(
        &self,
        ctx: &ObjectiveCtx<'_>,
        tape: &mut Tape<'_>,
        batch: &ShardBatch<'_>,
        rng: &mut StdRng,
    ) -> Var {
        self.edge_loss_parts(ctx, tape, batch, rng).0
    }
}

// ---------------------------------------------------------------------
// Hierarchical contrastive (InfoNCE / HGCL).

/// InfoNCE-style contrastive objective: each edge's endpoints are a
/// positive pair; pool-sampled degree-biased vertices are negatives;
/// both directions (user anchors vs. negative items, item anchors vs.
/// negative users) are averaged. Similarities are raw dot products
/// divided by the temperature — the hierarchy-level `normalize` step
/// (and weight decay) keeps magnitudes bounded.
pub struct HierarchicalContrastive {
    neg_user_sampler: NegativeSampler,
    neg_item_sampler: NegativeSampler,
    temperature: f32,
}

impl HierarchicalContrastive {
    /// Builds the objective with softmax temperature `temperature`.
    pub fn new(graph: &BipartiteGraph, temperature: f32) -> Self {
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "HierarchicalContrastive: temperature must be positive and finite"
        );
        HierarchicalContrastive {
            neg_user_sampler: NegativeSampler::degree_biased(graph, Side::Left),
            neg_item_sampler: NegativeSampler::degree_biased(graph, Side::Right),
            temperature,
        }
    }
}

impl Objective for HierarchicalContrastive {
    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::Contrastive
    }

    fn shard_loss(
        &self,
        ctx: &ObjectiveCtx<'_>,
        tape: &mut Tape<'_>,
        batch: &ShardBatch<'_>,
        rng: &mut StdRng,
    ) -> Var {
        let cfg = ctx.cfg;
        let n = batch.users.len();
        let (zu, zi, zun, zin, pool) = embed_with_negatives(
            ctx,
            tape,
            batch,
            &self.neg_user_sampler,
            &self.neg_item_sampler,
            rng,
        );

        // Shared positive similarity per edge.
        let pos = tape.dot_rows(zu, zi);

        // User anchors against negative items.
        let q_i = cfg.neg_items.max(1);
        let (pool_idx, pos_idx) = gather_pairs(n, q_i, pool, rng);
        let zin_g = tape.gather_rows(zin, &pool_idx);
        let zu_rep = tape.gather_rows(zu, &pos_idx);
        let neg_ui = tape.dot_rows(zu_rep, zin_g);
        let loss_u = tape.info_nce(pos, neg_ui, q_i, self.temperature);

        // Item anchors against negative users.
        let q_u = cfg.neg_users.max(1);
        let (pool_idx, pos_idx) = gather_pairs(n, q_u, pool, rng);
        let zun_g = tape.gather_rows(zun, &pool_idx);
        let zi_rep = tape.gather_rows(zi, &pos_idx);
        let neg_iu = tape.dot_rows(zi_rep, zun_g);
        let loss_i = tape.info_nce(pos, neg_iu, q_u, self.temperature);

        let sum = tape.add(loss_u, loss_i);
        tape.scale(sum, 0.5)
    }
}

// ---------------------------------------------------------------------
// Clustering constraint.

/// Eq. 5 plus `λ · mean‖z_u − z_i‖²` over the shard's positive edges —
/// the differentiable proxy for "pull vertices toward their Eq. 6
/// centroid" available during training (see module docs).
pub struct ClusterConstraint {
    edge: EdgeReconstruction,
    lambda: f32,
}

impl ClusterConstraint {
    /// Builds the objective with regulariser weight `lambda`.
    pub fn new(graph: &BipartiteGraph, lambda: f32) -> Self {
        assert!(
            lambda.is_finite() && lambda >= 0.0,
            "ClusterConstraint: lambda must be non-negative and finite"
        );
        ClusterConstraint { edge: EdgeReconstruction::new(graph), lambda }
    }
}

impl Objective for ClusterConstraint {
    fn kind(&self) -> ObjectiveKind {
        ObjectiveKind::Cluster
    }

    fn shard_loss(
        &self,
        ctx: &ObjectiveCtx<'_>,
        tape: &mut Tape<'_>,
        batch: &ShardBatch<'_>,
        rng: &mut StdRng,
    ) -> Var {
        let (edge_loss, zu, zi) = self.edge.edge_loss_parts(ctx, tape, batch, rng);
        let n = batch.users.len().max(1);
        let diff = tape.sub(zu, zi);
        let spread = tape.sum_squares(diff);
        let penalty = tape.scale(spread, self.lambda / n as f32);
        tape.add(edge_loss, penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{train_unsupervised, SageTrainConfig};
    use hignn_graph::SamplingMode;
    use hignn_tensor::init;
    use rand::SeedableRng;

    fn block_graph(rng: &mut StdRng) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..20u32 {
            let base = if u < 10 { 0 } else { 10 };
            for _ in 0..6 {
                let i = base + rng.gen_range(0..10u32);
                edges.push((u, i, 1.0));
            }
        }
        BipartiteGraph::from_edges(20, 20, edges)
    }

    fn cfg_with(objective: ObjectiveSpec) -> (crate::sage::BipartiteSageConfig, SageTrainConfig) {
        (
            crate::sage::BipartiteSageConfig {
                input_dim: 8,
                dim: 8,
                fanouts: vec![4, 3],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            SageTrainConfig {
                epochs: 8,
                batch_edges: 32,
                lr: 1e-2,
                neg_pool: 16,
                objective,
                ..Default::default()
            },
        )
    }

    #[test]
    fn spec_parse_round_trips_kind_names() {
        for kind in [ObjectiveKind::Edge, ObjectiveKind::Contrastive, ObjectiveKind::Cluster] {
            let spec = ObjectiveSpec::parse(kind.name()).expect("known token");
            assert_eq!(spec.kind(), kind);
            assert_eq!(ObjectiveKind::from_id(kind.id()), Some(kind));
        }
        assert!(ObjectiveSpec::parse("bogus").is_err());
        assert!(ObjectiveKind::from_id(99).is_none());
    }

    #[test]
    fn contrastive_trains_and_loss_decreases() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (scfg, tcfg) = cfg_with(ObjectiveSpec::HierarchicalContrastive {
            temperature: DEFAULT_TEMPERATURE,
        });
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 61);
        assert!(trained.store.all_finite());
        let first = trained.epoch_losses[0];
        let last = *trained.epoch_losses.last().unwrap();
        assert!(last.is_finite() && first.is_finite());
        assert!(last < first, "contrastive loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn cluster_constraint_trains_and_loss_decreases() {
        let mut rng = StdRng::seed_from_u64(32);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let (scfg, tcfg) = cfg_with(ObjectiveSpec::ClusterConstraint { lambda: DEFAULT_LAMBDA });
        let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 62);
        assert!(trained.store.all_finite());
        let first = trained.epoch_losses[0];
        let last = *trained.epoch_losses.last().unwrap();
        assert!(last < first, "cluster loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn cluster_constraint_tightens_positive_pairs() {
        // With a large λ the mean positive-pair distance after training
        // must be smaller than under plain edge reconstruction.
        let mut rng = StdRng::seed_from_u64(33);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(20, 8, &mut rng);
        let if_ = init::xavier_uniform(20, 8, &mut rng);
        let mean_pair_dist = |trained: &crate::trainer::TrainedSage| {
            let (zu, zi) = trained.embed_all(&g, &uf, &if_);
            let mut total = 0.0f64;
            for &(u, i, _) in g.edges() {
                let du: f64 = zu
                    .row(u as usize)
                    .iter()
                    .zip(zi.row(i as usize))
                    .map(|(&a, &b)| ((a - b) as f64).powi(2))
                    .sum();
                total += du;
            }
            total / g.num_edges() as f64
        };
        let (scfg, tcfg) = cfg_with(ObjectiveSpec::EdgeReconstruction);
        let plain = train_unsupervised(&g, &uf, &if_, scfg.clone(), &tcfg, 63);
        let (_, tcfg) = cfg_with(ObjectiveSpec::ClusterConstraint { lambda: 5.0 });
        let constrained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 63);
        let (dp, dc) = (mean_pair_dist(&plain), mean_pair_dist(&constrained));
        assert!(dc < dp, "constraint did not tighten pairs: {dc} vs {dp}");
    }

    /// Builds the tiniest complete shard-loss environment: a 6x6 graph,
    /// one-step SAGE at dim 4, a 6-wide scorer, fixed features, and a
    /// 3-edge batch. Returns everything a gradcheck closure needs.
    fn gradcheck_fixture(
        objective: ObjectiveSpec,
    ) -> (ParamStore, BipartiteSage, Mlp, BipartiteGraph, Matrix, Matrix, SageTrainConfig) {
        let mut rng = StdRng::seed_from_u64(90);
        let mut edges = Vec::new();
        for u in 0..6u32 {
            edges.push((u, u % 6, 1.0));
            edges.push((u, (u + 2) % 6, 1.0));
        }
        let g = BipartiteGraph::from_edges(6, 6, edges);
        let scfg = crate::sage::BipartiteSageConfig {
            input_dim: 4,
            dim: 4,
            fanouts: vec![2],
            sampling: SamplingMode::Uniform,
            ..Default::default()
        };
        let tcfg = SageTrainConfig {
            neg_users: 2,
            neg_items: 2,
            neg_pool: 4,
            scorer_hidden: vec![6],
            objective,
            ..Default::default()
        };
        let mut store = ParamStore::new();
        let sage = BipartiteSage::new(&mut store, "sage", scfg, &mut rng);
        let scorer = Mlp::new(
            &mut store,
            "scorer",
            &[2 * 4 + 1, 6, 1],
            hignn_tensor::nn::Activation::LeakyRelu,
            &mut rng,
        );
        let uf = init::xavier_uniform(6, 4, &mut rng);
        let if_ = init::xavier_uniform(6, 4, &mut rng);
        (store, sage, scorer, g, uf, if_, tcfg)
    }

    /// Runs [`hignn_tensor::gradcheck::check_param_grads`] over `ids` for
    /// the given objective's `shard_loss`. The closure re-seeds its RNG
    /// on every invocation so each finite-difference evaluation samples
    /// identical negatives/neighbours — the perturbed parameter is the
    /// only thing that varies.
    fn check_objective_grads(spec: ObjectiveSpec, sage_only: bool) {
        let (store, sage, scorer, g, uf, if_, tcfg) = gradcheck_fixture(spec);
        let objective = spec.instantiate(&g);
        let ids: Vec<_> = store
            .iter()
            .filter(|(_, name, _)| !sage_only || name.starts_with("sage"))
            .map(|(id, _, _)| id)
            .collect();
        assert!(!ids.is_empty());
        let users = [0usize, 2, 4];
        let items = [0usize, 4, 1];
        let weights = [0.5f32, 0.8, 0.3];
        hignn_tensor::gradcheck::check_param_grads(&store, &ids, 1e-2, 3e-2, |t| {
            let ctx = ObjectiveCtx {
                store: &store,
                sage: &sage,
                scorer: &scorer,
                graph: &g,
                user_src: FeatureSource::Fixed(&uf),
                item_src: FeatureSource::Fixed(&if_),
                cfg: &tcfg,
            };
            let batch = ShardBatch { users: &users, items: &items, weights: &weights, gamma: 0.4 };
            let mut rng = StdRng::seed_from_u64(99);
            objective.shard_loss(&ctx, t, &batch, &mut rng)
        });
    }

    #[test]
    fn contrastive_objective_gradients_match_finite_differences() {
        // The scorer plays no part in the contrastive loss, so only the
        // SAGE parameters carry analytic gradients — check exactly those.
        check_objective_grads(
            ObjectiveSpec::HierarchicalContrastive { temperature: DEFAULT_TEMPERATURE },
            true,
        );
    }

    #[test]
    fn cluster_constraint_objective_gradients_match_finite_differences() {
        // Edge reconstruction + penalty routes through the scorer too:
        // every registered parameter must carry a correct gradient.
        check_objective_grads(ObjectiveSpec::ClusterConstraint { lambda: 0.5 }, false);
    }

    #[test]
    fn degenerate_weight_edges_train_under_every_objective() {
        // Near-zero edge weights + WeightBiased neighbour sampling: the
        // degenerate-weight regime the PR 5 uniform fallback guards
        // (the all-zero case itself is covered in hignn-graph, where the
        // unchecked constructor lives), exercised here through every
        // objective's sampler call sites.
        let mut rng = StdRng::seed_from_u64(34);
        let mut edges = Vec::new();
        for u in 0..12u32 {
            for _ in 0..4 {
                edges.push((u, rng.gen_range(0..12u32), 1e-30));
            }
        }
        let g = BipartiteGraph::from_edges(12, 12, edges);
        let uf = init::xavier_uniform(12, 8, &mut rng);
        let if_ = init::xavier_uniform(12, 8, &mut rng);
        for spec in [
            ObjectiveSpec::EdgeReconstruction,
            ObjectiveSpec::HierarchicalContrastive { temperature: DEFAULT_TEMPERATURE },
            ObjectiveSpec::ClusterConstraint { lambda: DEFAULT_LAMBDA },
        ] {
            let (mut scfg, mut tcfg) = cfg_with(spec);
            scfg.sampling = SamplingMode::WeightBiased;
            tcfg.epochs = 2;
            let trained = train_unsupervised(&g, &uf, &if_, scfg, &tcfg, 64);
            assert!(
                trained.store.all_finite(),
                "objective {:?} produced non-finite parameters on degenerate-weight graph",
                spec.kind()
            );
        }
    }
}
