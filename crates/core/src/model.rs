//! A fully trained HiGNN model: the hierarchy plus the per-level
//! GraphSAGE modules that produced it.
//!
//! Keeping the trained modules enables *fold-in* inference for vertices
//! that did not exist at training time — the everyday production need
//! behind the paper's deployment story (new users arrive continuously;
//! retraining the stack per user is not an option). A new user is folded
//! in by:
//!
//! 1. appending it to the interaction graph with its observed clicks,
//! 2. running the trained level-1 GraphSAGE's exact inference to get its
//!    level-1 embedding,
//! 3. assigning it to the nearest level-1 user cluster centroid, and
//! 4. following the existing cluster chain upward for the coarser-level
//!    embeddings.

use crate::sage::with_null_row;
use crate::stack::{build_hierarchy, Hierarchy, HignnConfig};
use crate::trainer::{train_unsupervised, TrainedSage};
use hignn_cluster::kmeans::{mean_by_cluster, nearest_centroid};
use hignn_graph::BipartiteGraph;
use hignn_tensor::Matrix;

/// A trained hierarchy together with its level models and the training
/// inputs needed for fold-in inference.
pub struct HignnModel {
    /// The learned hierarchical structure.
    pub hierarchy: Hierarchy,
    /// The trained GraphSAGE of each level (finest first).
    pub level_models: Vec<TrainedSage>,
    graph: BipartiteGraph,
    user_feats: Matrix,
    item_feats: Matrix,
}

impl HignnModel {
    /// Trains the full stack, keeping the level models (the plain
    /// [`build_hierarchy`] discards them).
    pub fn train(
        graph: &BipartiteGraph,
        user_feats: &Matrix,
        item_feats: &Matrix,
        cfg: &HignnConfig,
    ) -> Self {
        // Build the hierarchy, then retrain level models against the same
        // seeds; `train_unsupervised` is deterministic given (graph,
        // feats, seed), so the level-1 model here is exactly the one the
        // hierarchy used.
        let hierarchy = build_hierarchy(graph, user_feats, item_feats, cfg);
        let mut level_models = Vec::with_capacity(hierarchy.num_levels());
        let mut g = graph.clone();
        let mut xu = user_feats.clone();
        let mut xi = item_feats.clone();
        for (idx, level) in hierarchy.levels().iter().enumerate() {
            let sage_cfg = crate::sage::BipartiteSageConfig {
                input_dim: xu.cols(),
                ..cfg.sage.clone()
            };
            let mut train_cfg = cfg.train.clone();
            if idx > 0 {
                train_cfg.trainable_features = false;
            }
            if g.num_edges() < 2000 {
                train_cfg.epochs = (train_cfg.epochs * 4).min(60);
            }
            let trained = train_unsupervised(
                &g,
                &xu,
                &xi,
                sage_cfg,
                &train_cfg,
                cfg.seed.wrapping_add(idx as u64 + 1),
            );
            level_models.push(trained);
            // Advance inputs exactly as build_hierarchy did.
            g = level.coarsened.clone();
            xu = mean_by_cluster(
                &level.user_embeddings,
                level.user_assignment.as_slice(),
                level.user_assignment.num_clusters(),
            );
            xi = mean_by_cluster(
                &level.item_embeddings,
                level.item_assignment.as_slice(),
                level.item_assignment.num_clusters(),
            );
        }
        HignnModel {
            hierarchy,
            level_models,
            graph: graph.clone(),
            user_feats: user_feats.clone(),
            item_feats: item_feats.clone(),
        }
    }

    /// The training graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Folds new users into the trained hierarchy.
    ///
    /// `new_user_edges[k]` lists the `k`-th new user's clicked items as
    /// `(item, weight)` pairs. Returns each new user's hierarchical
    /// embedding (`new_users x user_dim`), computed without retraining:
    /// level-1 embeddings come from the trained GraphSAGE over the
    /// extended graph; coarser levels follow the nearest level-1 cluster's
    /// existing chain.
    pub fn fold_in_users(&self, new_user_edges: &[Vec<(u32, f32)>]) -> Matrix {
        let n_old = self.graph.num_left();
        let n_new = new_user_edges.len();
        if n_new == 0 {
            return Matrix::zeros(0, self.hierarchy.user_dim());
        }
        // Extended graph: original edges + new users' clicks.
        let mut edges: Vec<(u32, u32, f32)> = self.graph.edges().to_vec();
        for (k, clicks) in new_user_edges.iter().enumerate() {
            for &(item, w) in clicks {
                assert!(
                    (item as usize) < self.graph.num_right(),
                    "fold_in_users: unknown item {item}"
                );
                edges.push(((n_old + k) as u32, item, w.max(1e-3)));
            }
        }
        let extended =
            BipartiteGraph::from_edges(n_old + n_new, self.graph.num_right(), edges);
        // Extended user features: new users get the null (zero) feature,
        // or the learned table's null row when features were trainable.
        let level1 = &self.level_models[0];
        let (uf, if_) = match level1.feature_params {
            Some((u, i)) => (level1.store.get(u).clone(), level1.store.get(i).clone()),
            None => (with_null_row(&self.user_feats), with_null_row(&self.item_feats)),
        };
        let null_row: Vec<f32> = uf.row(uf.rows() - 1).to_vec();
        let mut ext_uf = Matrix::zeros(n_old + n_new, uf.cols());
        for u in 0..n_old {
            ext_uf.set_row(u, uf.row(u));
        }
        for k in 0..n_new {
            ext_uf.set_row(n_old + k, &null_row);
        }
        let item_rows: Vec<usize> = (0..self.graph.num_right()).collect();
        let if_trim = if_.gather_rows(&item_rows);
        let (mut zu, _zi) = level1.sage.embed_all(&level1.store, &extended, &ext_uf, &if_trim);
        zu.l2_normalize_rows();

        // Level-1 cluster centroids from the stored level embeddings.
        let level1_data = &self.hierarchy.levels()[0];
        let centroids = mean_by_cluster(
            &level1_data.user_embeddings,
            level1_data.user_assignment.as_slice(),
            level1_data.user_assignment.num_clusters(),
        );
        let mut out = Matrix::zeros(n_new, self.hierarchy.user_dim());
        for k in 0..n_new {
            let z1 = zu.row(n_old + k);
            let (cluster, _) = nearest_centroid(&centroids, z1);
            // Assemble: own level-1 embedding, then the chain of the
            // nearest cluster for the coarser levels.
            let mut row = Vec::with_capacity(self.hierarchy.user_dim());
            row.extend_from_slice(z1);
            let mut v = cluster;
            for level in &self.hierarchy.levels()[1..] {
                row.extend_from_slice(level.user_embeddings.row(v));
                v = level.user_assignment.cluster_of(v) as usize;
            }
            out.set_row(k, &row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use hignn_graph::SamplingMode;
    use hignn_tensor::init;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn block_graph(rng: &mut StdRng) -> BipartiteGraph {
        let mut edges = Vec::new();
        for u in 0..30u32 {
            let base = if u < 15 { 0 } else { 15 };
            for _ in 0..5 {
                edges.push((u, base + rng.gen_range(0..15u32), 1.0));
            }
        }
        BipartiteGraph::from_edges(30, 30, edges)
    }

    fn cfg(seed: u64) -> HignnConfig {
        HignnConfig {
            levels: 2,
            sage: BipartiteSageConfig {
                input_dim: 8,
                dim: 8,
                fanouts: vec![4, 2],
                sampling: SamplingMode::Uniform,
                ..Default::default()
            },
            train: SageTrainConfig {
                epochs: 4,
                batch_edges: 32,
                neg_pool: 16,
                trainable_features: true,
                ..Default::default()
            },
            cluster_counts: ClusterCounts::Fixed(vec![(6, 6), (2, 2)]),
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed,
        }
    }

    #[test]
    fn model_keeps_one_sage_per_level() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(30, 8, &mut rng);
        let if_ = init::xavier_uniform(30, 8, &mut rng);
        let model = HignnModel::train(&g, &uf, &if_, &cfg(2));
        assert_eq!(model.level_models.len(), model.hierarchy.num_levels());
        assert_eq!(model.graph().num_left(), 30);
    }

    #[test]
    fn fold_in_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(30, 8, &mut rng);
        let if_ = init::xavier_uniform(30, 8, &mut rng);
        let model = HignnModel::train(&g, &uf, &if_, &cfg(4));
        let new_users = vec![vec![(0u32, 2.0f32), (1, 1.0)], vec![(20, 3.0)]];
        let z1 = model.fold_in_users(&new_users);
        let z2 = model.fold_in_users(&new_users);
        assert_eq!(z1.shape(), (2, model.hierarchy.user_dim()));
        assert!(z1.max_abs_diff(&z2) < 1e-9);
        assert!(z1.all_finite());
        // Empty input.
        assert_eq!(model.fold_in_users(&[]).rows(), 0);
    }

    #[test]
    fn folded_user_lands_near_its_block() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(30, 8, &mut rng);
        let if_ = init::xavier_uniform(30, 8, &mut rng);
        // More epochs than the other model tests: this one asserts a
        // geometric property of the learned space, which needs the
        // block structure to actually be learned, not just initialised.
        let mut train_cfg = cfg(6);
        train_cfg.train.epochs = 12;
        train_cfg.train.lr = 5e-3;
        let model = HignnModel::train(&g, &uf, &if_, &train_cfg);
        // New user clicking only block-A items should be closer (on the
        // hierarchical embedding) to block-A users than block-B users on
        // average.
        let new_users = vec![vec![(0u32, 1.0f32), (3, 1.0), (7, 1.0), (11, 1.0)]];
        let z = model.fold_in_users(&new_users);
        let zu = model.hierarchy.hierarchical_users();
        let dist = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        let d_a: f32 =
            (0..15).map(|u| dist(z.row(0), zu.row(u))).sum::<f32>() / 15.0;
        let d_b: f32 =
            (15..30).map(|u| dist(z.row(0), zu.row(u))).sum::<f32>() / 15.0;
        assert!(d_a < d_b, "folded user not near its block: A {d_a} vs B {d_b}");
    }

    #[test]
    #[should_panic(expected = "unknown item")]
    fn fold_in_rejects_unknown_items() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = block_graph(&mut rng);
        let uf = init::xavier_uniform(30, 8, &mut rng);
        let if_ = init::xavier_uniform(30, 8, &mut rng);
        let model = HignnModel::train(&g, &uf, &if_, &cfg(8));
        model.fold_in_users(&[vec![(999, 1.0)]]);
    }
}
