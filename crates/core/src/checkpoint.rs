//! Crash-safe checkpointing for hierarchy training, plus a
//! deterministic fault-injection harness.
//!
//! A [`CheckpointStore`] is a directory holding one meta record and one
//! record per completed hierarchy level:
//!
//! ```text
//! <dir>/meta.hgck      := "HGCK" u32(version=5) section(meta)
//! meta                 := u64(fingerprint) u64(seed)
//!                         u64(levels_total) u64(levels_done)
//!                         u64(threads)            -- v2+; v1 lacks it
//!                         u64(objective)          -- v4+; see below
//!                         u64(math)               -- v5+; see below
//!                         metrics_snapshot        -- v3+; see below
//! <dir>/level_NN.hgcl  := "HGCL" u32(version=5) section(level)
//! section              := u64(payload_len) payload u32(crc32)
//! ```
//!
//! Version-1 records (no `threads` word) still load; `threads` reads
//! back as 0 (= unrecorded). The thread count is provenance only — it
//! never participates in the fingerprint, because a checkpoint written
//! at N threads must resume byte-identically at any thread count.
//!
//! Version-3 records append a [`hignn_obs::MetricsSnapshot`] (the
//! observability counters at checkpoint time, possibly empty) after the
//! fixed words, so a resumed run continues its counters instead of
//! restarting them at zero. The snapshot is provenance/diagnostics like
//! `threads`: it never participates in the fingerprint and has no
//! effect on the resumed model bytes (inertness, DESIGN.md §10).
//! v1/v2 records still load, reading back an absent snapshot.
//!
//! Version-4 records insert the training objective's stable id
//! ([`crate::objective::ObjectiveKind::id`]) between `threads` and the
//! snapshot. Unlike `threads`, the objective is *load-bearing*:
//! resuming a checkpoint under a different objective would splice two
//! different losses into one hierarchy, so [`CheckpointStore::load_state`]
//! refuses a mismatch with a structured config error (checked before
//! the fingerprint so the message names the objective, not just "your
//! inputs differ"). v1-v3 records read back objective id 0 — edge
//! reconstruction, the only objective those builds had.
//!
//! Version-5 records insert the math tier's stable id
//! ([`hignn_tensor::MathMode::id`]) between the objective and the
//! snapshot. Like the objective, it is load-bearing: Bitwise and
//! FastMath order float accumulation differently, so resuming a
//! hierarchy under the other tier would splice two numeric contracts
//! into one artifact and [`CheckpointStore::load_state`] refuses with a
//! config error naming both tiers. v1-v4 records read back math id 0 —
//! Bitwise, the only tier those builds had.
//!
//! Every write is atomic (temp file + fsync + rename), and the meta
//! record is only advanced *after* its level record is durably on disk,
//! so the meta is the commit point: a crash at any instant leaves a
//! directory that resumes cleanly. The `fingerprint` ties a checkpoint
//! to its exact inputs (graph, features, config), so resuming against
//! different data is refused instead of silently producing a chimera.
//!
//! [`FaultPlan`] describes one deliberate, deterministic fault —
//! a simulated crash or checkpoint damage — and is threaded through
//! [`crate::stack::build_hierarchy_with`] by integration tests and the
//! hidden `--fault` CLI flag to prove the recovery story end to end.

use crate::error::HignnError;
use crate::io::{atomic_write, decode_level, encode_level, read_section, write_section};
use crate::stack::{HignnConfig, Level};
use hignn_graph::BipartiteGraph;
use hignn_obs::MetricsSnapshot;
use hignn_tensor::Matrix;
use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

const META_MAGIC: &[u8; 4] = b"HGCK";
const LEVEL_MAGIC: &[u8; 4] = b"HGCL";
const CKPT_VERSION: u32 = 5;
/// Oldest checkpoint version this build still reads.
const CKPT_MIN_VERSION: u32 = 1;

/// The meta record of a checkpoint directory: which run it belongs to
/// and how far that run got.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// [`run_fingerprint`] of the inputs this checkpoint belongs to.
    pub fingerprint: u64,
    /// The run's base RNG seed (informational; the fingerprint already
    /// covers it).
    pub seed: u64,
    /// Requested number of levels (`HignnConfig::levels`).
    pub levels_total: u64,
    /// Completed levels with durable level records.
    pub levels_done: u64,
    /// Worker threads of the run that wrote this record (provenance
    /// only — resuming at a different thread count is fully supported
    /// and yields identical bytes). 0 = written by a version-1 build
    /// that did not record it.
    pub threads: u64,
    /// Stable id of the training objective the run used
    /// ([`crate::objective::ObjectiveKind::id`]). Load-bearing:
    /// [`CheckpointStore::load_state`] refuses to resume under a
    /// different objective. v1-v3 records read back 0 (edge
    /// reconstruction, the only objective those builds had).
    pub objective: u64,
    /// Stable id of the math tier the run used
    /// ([`hignn_tensor::MathMode::id`]). Load-bearing like `objective`:
    /// [`CheckpointStore::load_state`] refuses to resume under a
    /// different tier. v1-v4 records read back 0 (Bitwise, the only
    /// tier those builds had).
    pub math: u64,
}

/// A directory of per-level training checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, HignnError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| HignnError::io_path(&dir, e))?;
        Ok(CheckpointStore { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("meta.hgck")
    }

    /// Path of the record for 1-based level `idx`.
    pub fn level_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("level_{idx:02}.hgcl"))
    }

    /// Whether a meta record exists (i.e. there is something to resume).
    pub fn has_meta(&self) -> bool {
        self.meta_path().exists()
    }

    /// Atomically writes the meta record, embedding the current
    /// observability counters (empty when metrics are disabled) so a
    /// resumed run continues them.
    pub fn write_meta(&self, meta: &CheckpointMeta) -> Result<(), HignnError> {
        let snapshot = if hignn_obs::enabled() {
            hignn_obs::global().snapshot()
        } else {
            MetricsSnapshot::default()
        };
        self.write_meta_with_metrics(meta, &snapshot)
    }

    /// Atomically writes the meta record with an explicit metrics
    /// snapshot (the non-global-state core of [`Self::write_meta`]).
    pub fn write_meta_with_metrics(
        &self,
        meta: &CheckpointMeta,
        snapshot: &MetricsSnapshot,
    ) -> Result<(), HignnError> {
        let mut payload = Vec::with_capacity(60);
        payload.extend_from_slice(&meta.fingerprint.to_le_bytes());
        payload.extend_from_slice(&meta.seed.to_le_bytes());
        payload.extend_from_slice(&meta.levels_total.to_le_bytes());
        payload.extend_from_slice(&meta.levels_done.to_le_bytes());
        payload.extend_from_slice(&meta.threads.to_le_bytes());
        payload.extend_from_slice(&meta.objective.to_le_bytes());
        payload.extend_from_slice(&meta.math.to_le_bytes());
        payload.extend_from_slice(&snapshot.encode());
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        write_section(&mut buf, &payload).expect("in-memory write cannot fail");
        let path = self.meta_path();
        atomic_write(&path, &buf).map_err(|e| HignnError::io_path(&path, e))
    }

    /// Reads and validates the meta record, discarding any embedded
    /// metrics snapshot. See [`Self::read_meta_with_metrics`].
    pub fn read_meta(&self) -> Result<CheckpointMeta, HignnError> {
        self.read_meta_with_metrics().map(|(meta, _)| meta)
    }

    /// Reads and validates the meta record, returning the embedded
    /// metrics snapshot when present (v3+; `None` for v1/v2 records).
    ///
    /// The file's bytes are read in full first, so every parse failure
    /// after that — truncation included — is classified as
    /// [`HignnError::Corrupt`] (exit 4), not generic I/O.
    pub fn read_meta_with_metrics(
        &self,
    ) -> Result<(CheckpointMeta, Option<MetricsSnapshot>), HignnError> {
        let path = self.meta_path();
        let bytes = fs::read(&path).map_err(|e| HignnError::io_path(&path, e))?;
        let mut r = bytes.as_slice();
        let mut magic = [0u8; 4];
        let mut vbuf = [0u8; 4];
        let ctx = path.display().to_string();
        r.read_exact(&mut magic)
            .map_err(|_| HignnError::corrupt(&ctx, "truncated before magic"))?;
        if &magic != META_MAGIC {
            return Err(HignnError::corrupt(&ctx, "bad magic (not a checkpoint meta file)"));
        }
        r.read_exact(&mut vbuf)
            .map_err(|_| HignnError::corrupt(&ctx, "truncated before version"))?;
        let version = u32::from_le_bytes(vbuf);
        if !(CKPT_MIN_VERSION..=CKPT_VERSION).contains(&version) {
            return Err(HignnError::corrupt(&ctx, format!("unsupported version {version}")));
        }
        let payload = read_section(&mut r, "checkpoint meta")
            .map_err(|e| HignnError::corrupt(&ctx, e.to_string()))?;
        let fixed_len = match version {
            1 => 32,
            2 | 3 => 40,
            4 => 48,
            _ => 56,
        };
        let len_ok = if version >= 3 {
            // v3 appends a variable-length metrics snapshot.
            payload.len() >= fixed_len + 4
        } else {
            payload.len() == fixed_len
        };
        if !len_ok {
            return Err(HignnError::corrupt(
                &ctx,
                format!(
                    "meta payload is {} bytes, expected {}{fixed_len} for version {version}",
                    payload.len(),
                    if version >= 3 { ">= 4 + " } else { "" },
                ),
            ));
        }
        let word = |k: usize| {
            u64::from_le_bytes(payload[k * 8..(k + 1) * 8].try_into().expect("len checked"))
        };
        let meta = CheckpointMeta {
            fingerprint: word(0),
            seed: word(1),
            levels_total: word(2),
            levels_done: word(3),
            threads: if version >= 2 { word(4) } else { 0 },
            objective: if version >= 4 { word(5) } else { 0 },
            math: if version >= 5 { word(6) } else { 0 },
        };
        if meta.levels_done > meta.levels_total {
            return Err(HignnError::corrupt(
                &ctx,
                format!("levels_done {} > levels_total {}", meta.levels_done, meta.levels_total),
            ));
        }
        let snapshot = if version >= 3 {
            Some(MetricsSnapshot::decode(&payload[fixed_len..]).map_err(|e| {
                HignnError::corrupt(&ctx, format!("bad metrics snapshot: {e}"))
            })?)
        } else {
            None
        };
        Ok((meta, snapshot))
    }

    /// Atomically writes the record for 1-based level `idx`.
    pub fn save_level(&self, idx: usize, level: &Level) -> Result<(), HignnError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(LEVEL_MAGIC);
        buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
        write_section(&mut buf, &encode_level(level)).expect("in-memory write cannot fail");
        let path = self.level_path(idx);
        atomic_write(&path, &buf).map_err(|e| HignnError::io_path(&path, e))
    }

    /// Reads and CRC-validates the record for 1-based level `idx`.
    /// As with [`CheckpointStore::read_meta`], every failure after the
    /// file's bytes are in memory is classified as corruption.
    pub fn load_level(&self, idx: usize) -> Result<Level, HignnError> {
        let path = self.level_path(idx);
        let bytes = fs::read(&path).map_err(|e| HignnError::io_path(&path, e))?;
        let mut r = bytes.as_slice();
        let mut magic = [0u8; 4];
        let mut vbuf = [0u8; 4];
        let ctx = path.display().to_string();
        r.read_exact(&mut magic)
            .map_err(|_| HignnError::corrupt(&ctx, "truncated before magic"))?;
        if &magic != LEVEL_MAGIC {
            return Err(HignnError::corrupt(&ctx, "bad magic (not a checkpoint level file)"));
        }
        r.read_exact(&mut vbuf)
            .map_err(|_| HignnError::corrupt(&ctx, "truncated before version"))?;
        let version = u32::from_le_bytes(vbuf);
        if !(CKPT_MIN_VERSION..=CKPT_VERSION).contains(&version) {
            return Err(HignnError::corrupt(&ctx, format!("unsupported version {version}")));
        }
        let what = format!("checkpoint level {idx}");
        let payload =
            read_section(&mut r, &what).map_err(|e| HignnError::corrupt(&ctx, e.to_string()))?;
        decode_level(&payload, &what).map_err(|e| HignnError::corrupt(&ctx, e.to_string()))
    }

    /// Loads the resumable state for a run with the given inputs:
    /// validates the meta record against `expected_objective` (the
    /// current run's [`crate::objective::ObjectiveKind::id`]),
    /// `expected_fingerprint`, and `levels_total`, then loads every
    /// completed level.
    ///
    /// The objective check runs *first*, then the math tier, then the
    /// fingerprint: a mismatched objective or tier also fails the
    /// fingerprint (both are part of the config), but checking them
    /// separately yields errors that name the two objectives or tiers
    /// instead of a bare fingerprint diff.
    ///
    /// When metrics are enabled and the meta record carries a snapshot
    /// (v3+), the snapshot's counters are added into the global
    /// registry so the resumed run's report continues from the original
    /// run's totals instead of restarting at zero.
    pub fn load_state(
        &self,
        expected_fingerprint: u64,
        levels_total: usize,
        expected_objective: u64,
        expected_math: u64,
    ) -> Result<(CheckpointMeta, Vec<Level>), HignnError> {
        let (meta, snapshot) = self.read_meta_with_metrics()?;
        if meta.objective != expected_objective {
            let describe = |id: u64| match crate::objective::ObjectiveKind::from_id(id) {
                Some(kind) => format!("`{}`", kind.name()),
                None => format!("unknown objective id {id}"),
            };
            return Err(HignnError::Config(format!(
                "checkpoint in {} was trained with objective {} but the current run uses \
                 objective {}; refusing to resume (a hierarchy must be built under one loss)",
                self.dir.display(),
                describe(meta.objective),
                describe(expected_objective),
            )));
        }
        if meta.math != expected_math {
            let describe = |id: u64| match hignn_tensor::MathMode::from_id(id) {
                Some(mode) => format!("`{}`", mode.name()),
                None => format!("unknown math id {id}"),
            };
            return Err(HignnError::Config(format!(
                "checkpoint in {} was trained with math tier {} but the current run uses \
                 math tier {}; refusing to resume (a hierarchy must be built under one \
                 accumulation contract)",
                self.dir.display(),
                describe(meta.math),
                describe(expected_math),
            )));
        }
        if meta.fingerprint != expected_fingerprint {
            return Err(HignnError::Config(format!(
                "checkpoint in {} was written for different inputs \
                 (fingerprint {:#018x}, current run {:#018x}); refusing to resume",
                self.dir.display(),
                meta.fingerprint,
                expected_fingerprint,
            )));
        }
        if meta.levels_total != levels_total as u64 {
            return Err(HignnError::Config(format!(
                "checkpoint in {} targets {} levels but the current config asks for \
                 {levels_total}; refusing to resume",
                self.dir.display(),
                meta.levels_total,
            )));
        }
        let mut levels = Vec::with_capacity(meta.levels_done as usize);
        for idx in 1..=meta.levels_done as usize {
            levels.push(self.load_level(idx)?);
        }
        if hignn_obs::enabled() {
            if let Some(snapshot) = snapshot {
                hignn_obs::global().restore(&snapshot);
            }
        }
        Ok((meta, levels))
    }

    /// Fault-harness helper: truncates level `idx`'s record to
    /// `keep_bytes`, simulating a torn write that bypassed the atomic
    /// rename (e.g. damage after the fact).
    pub fn truncate_level(&self, idx: usize, keep_bytes: u64) -> Result<(), HignnError> {
        let path = self.level_path(idx);
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| HignnError::io_path(&path, e))?;
        f.set_len(keep_bytes).map_err(|e| HignnError::io_path(&path, e))
    }

    /// Fault-harness helper: XORs the byte at `offset` in level `idx`'s
    /// record with `mask`, simulating bit rot. `offset` wraps modulo
    /// the file length; a zero `mask` is promoted to `0x01` so the
    /// byte always actually changes.
    pub fn corrupt_level(&self, idx: usize, offset: u64, mask: u8) -> Result<(), HignnError> {
        let path = self.level_path(idx);
        let mut bytes = fs::read(&path).map_err(|e| HignnError::io_path(&path, e))?;
        if bytes.is_empty() {
            return Err(HignnError::corrupt(path.display().to_string(), "empty level record"));
        }
        let at = (offset % bytes.len() as u64) as usize;
        bytes[at] ^= if mask == 0 { 1 } else { mask };
        fs::write(&path, &bytes).map_err(|e| HignnError::io_path(&path, e))
    }
}

/// FNV-1a hash of a run's full inputs (graph, features, config).
///
/// Ties a checkpoint directory to the exact training inputs; any change
/// to the graph, features, or hyper-parameters yields a different
/// fingerprint and a refused resume.
pub fn run_fingerprint(
    graph: &BipartiteGraph,
    user_feats: &Matrix,
    item_feats: &Matrix,
    cfg: &HignnConfig,
) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
    };
    eat(&(graph.num_left() as u64).to_le_bytes());
    eat(&(graph.num_right() as u64).to_le_bytes());
    for &(u, i, w) in graph.edges() {
        eat(&u.to_le_bytes());
        eat(&i.to_le_bytes());
        eat(&w.to_bits().to_le_bytes());
    }
    for m in [user_feats, item_feats] {
        eat(&(m.rows() as u64).to_le_bytes());
        eat(&(m.cols() as u64).to_le_bytes());
        for &v in m.data() {
            eat(&v.to_bits().to_le_bytes());
        }
    }
    // The config is hashed through its Debug form: stable within a
    // build, and automatically covers every field (including the seed).
    eat(format!("{cfg:?}").as_bytes());
    h
}

/// One deliberate, deterministic fault to inject during
/// [`crate::stack::build_hierarchy_with`] — the test harness for the
/// crash-recovery machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Simulate a crash immediately after level `l`'s checkpoint is
    /// durably written (spec: `crash-after-level=L`).
    CrashAfterLevel(usize),
    /// Simulate a crash after epoch `epoch` (0-based) of level `level`
    /// completes, before the level is checkpointed (spec:
    /// `crash-after-epoch=L:E`).
    CrashAfterEpoch {
        /// 1-based hierarchy level.
        level: usize,
        /// 0-based epoch within that level.
        epoch: usize,
    },
    /// After level `level`'s checkpoint is written, truncate it to
    /// `keep_bytes` and crash (spec: `truncate=L:N`).
    TruncateCheckpoint {
        /// 1-based hierarchy level.
        level: usize,
        /// Bytes to keep.
        keep_bytes: u64,
    },
    /// After level `level`'s checkpoint is written, XOR one byte at
    /// `offset` (modulo file length) with `mask` and crash (spec:
    /// `corrupt=L:OFFSET:MASK`).
    CorruptCheckpoint {
        /// 1-based hierarchy level.
        level: usize,
        /// Byte offset to damage (wraps modulo file length).
        offset: u64,
        /// XOR mask (zero is promoted to 1).
        mask: u8,
    },
    /// Panic inside worker shard `shard` the first time it is
    /// dispatched for epoch `epoch` of level `level` (spec:
    /// `worker-panic=L:E:S`). Fires exactly once; the supervised
    /// executor must recover by deterministic re-execution, so this
    /// fault — unlike the crash family — is expected to leave the run
    /// *successful and bitwise identical* to an uninjected one.
    WorkerPanic {
        /// 1-based hierarchy level.
        level: usize,
        /// 0-based epoch within that level.
        epoch: usize,
        /// 0-based gradient shard to poison.
        shard: usize,
    },
    /// Fail the first `failures` write attempts at `site` with a
    /// transient I/O error (`ErrorKind::Interrupted`), then let the
    /// site succeed (spec: `io-error=SITE:N`). With `failures` within
    /// the retry budget the run recovers bitwise identically; beyond it
    /// the run exits with the I/O code, leaving a resumable checkpoint.
    TransientIo {
        /// Which named write site to poison.
        site: WriteSite,
        /// How many consecutive attempts fail before the site heals.
        failures: u32,
    },
    /// Advance the watchdog's *virtual* clock by `virtual_ms` after
    /// epoch `epoch` of level `level` completes (spec: `stall=L:E:MS`).
    /// Simulates a stalled level against `--deadline-secs` without any
    /// real sleeping; a no-op when no watchdog deadline is configured.
    StallEpoch {
        /// 1-based hierarchy level.
        level: usize,
        /// 0-based epoch within that level.
        epoch: usize,
        /// Virtual milliseconds the stall appears to take.
        virtual_ms: u64,
    },
}

/// A named write site where [`FaultPlan::TransientIo`] can fire and
/// where the retry layer keeps per-site counters. The four sites are
/// every durable write the runtime performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteSite {
    /// A level record write (`CheckpointStore::save_level`).
    SaveLevel,
    /// The checkpoint meta commit point (`CheckpointStore::write_meta`).
    WriteMeta,
    /// The final HGHI hierarchy save (`io::save_hierarchy`).
    SaveHierarchy,
    /// The CLI's metrics run-report emission.
    MetricsReport,
}

impl WriteSite {
    /// Every named write site, for matrix-style test campaigns.
    pub const ALL: [WriteSite; 4] =
        [WriteSite::SaveLevel, WriteSite::WriteMeta, WriteSite::SaveHierarchy, WriteSite::MetricsReport];

    /// The site's counter/context name (e.g. `checkpoint.save_level`).
    pub fn name(self) -> &'static str {
        match self {
            WriteSite::SaveLevel => "checkpoint.save_level",
            WriteSite::WriteMeta => "checkpoint.write_meta",
            WriteSite::SaveHierarchy => "io.save_hierarchy",
            WriteSite::MetricsReport => "obs.metrics_report",
        }
    }

    /// The site's `--fault io-error=SITE:N` spec token.
    pub fn spec_token(self) -> &'static str {
        match self {
            WriteSite::SaveLevel => "save-level",
            WriteSite::WriteMeta => "write-meta",
            WriteSite::SaveHierarchy => "save-hierarchy",
            WriteSite::MetricsReport => "metrics-report",
        }
    }

    fn parse_token(s: &str) -> Option<WriteSite> {
        WriteSite::ALL.into_iter().find(|site| site.spec_token() == s)
    }
}

impl FaultPlan {
    /// Parses the hidden CLI `--fault` spec. Formats:
    /// `crash-after-level=L`, `crash-after-epoch=L:E`, `truncate=L:N`,
    /// `corrupt=L:OFFSET:MASK`, `worker-panic=L:E:S`,
    /// `io-error=SITE:N` (SITE ∈ save-level, write-meta,
    /// save-hierarchy, metrics-report), `stall=L:E:MS`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (kind, rest) = spec
            .split_once('=')
            .ok_or_else(|| format!("fault spec '{spec}' has no '='"))?;
        let nums: Vec<&str> = rest.split(':').collect();
        let int = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>().map_err(|_| format!("fault spec '{spec}': bad {what} '{s}'"))
        };
        match (kind, nums.as_slice()) {
            ("crash-after-level", [l]) => Ok(FaultPlan::CrashAfterLevel(int(l, "level")? as usize)),
            ("crash-after-epoch", [l, e]) => Ok(FaultPlan::CrashAfterEpoch {
                level: int(l, "level")? as usize,
                epoch: int(e, "epoch")? as usize,
            }),
            ("truncate", [l, n]) => Ok(FaultPlan::TruncateCheckpoint {
                level: int(l, "level")? as usize,
                keep_bytes: int(n, "byte count")?,
            }),
            ("corrupt", [l, off, mask]) => Ok(FaultPlan::CorruptCheckpoint {
                level: int(l, "level")? as usize,
                offset: int(off, "offset")?,
                mask: int(mask, "mask")? as u8,
            }),
            ("worker-panic", [l, e, s]) => Ok(FaultPlan::WorkerPanic {
                level: int(l, "level")? as usize,
                epoch: int(e, "epoch")? as usize,
                shard: int(s, "shard")? as usize,
            }),
            ("io-error", [site, n]) => Ok(FaultPlan::TransientIo {
                site: WriteSite::parse_token(site).ok_or_else(|| {
                    format!(
                        "fault spec '{spec}': unknown write site '{site}' (expected \
                         save-level, write-meta, save-hierarchy, or metrics-report)"
                    )
                })?,
                failures: int(n, "failure count")? as u32,
            }),
            ("stall", [l, e, ms]) => Ok(FaultPlan::StallEpoch {
                level: int(l, "level")? as usize,
                epoch: int(e, "epoch")? as usize,
                virtual_ms: int(ms, "milliseconds")?,
            }),
            _ => Err(format!(
                "unknown fault spec '{spec}' (expected crash-after-level=L, \
                 crash-after-epoch=L:E, truncate=L:N, corrupt=L:OFFSET:MASK, \
                 worker-panic=L:E:S, io-error=SITE:N, or stall=L:E:MS)"
            )),
        }
    }

    /// Deterministic single-byte corruption derived from `seed`: a
    /// convenience for fuzz-style tests that want many distinct
    /// (offset, mask) pairs without hand-picking them.
    pub fn seeded_corruption(level: usize, seed: u64) -> FaultPlan {
        // SplitMix64 finalizer — uniform and cheap.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        FaultPlan::CorruptCheckpoint { level, offset: z >> 8, mask: (z & 0xFF) as u8 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_meta_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        let meta = CheckpointMeta {
            fingerprint: 0xDEAD_BEEF,
            seed: 7,
            levels_total: 3,
            levels_done: 1,
            threads: 4,
            objective: 2,
            math: 1,
        };
        store.write_meta(&meta).unwrap();
        assert!(store.has_meta());
        assert_eq!(store.read_meta().unwrap(), meta);
        // Flip one byte inside the payload: must be detected as corrupt.
        let path = dir.join("meta.hgck");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 6; // inside payload/CRC region
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.read_meta().unwrap_err();
        assert_eq!(err.exit_code(), 4, "expected corruption, got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version1_meta_without_threads_still_loads() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_v1_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        // Hand-build a v1 record: 32-byte payload, version word 1.
        let mut payload = Vec::with_capacity(32);
        for w in [0xFEEDu64, 9, 2, 2] {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&1u32.to_le_bytes());
        write_section(&mut buf, &payload).unwrap();
        std::fs::write(dir.join("meta.hgck"), &buf).unwrap();
        let meta = store.read_meta().unwrap();
        assert_eq!(meta.fingerprint, 0xFEED);
        assert_eq!(meta.threads, 0, "v1 records read back threads = 0");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_snapshot_roundtrips_through_meta() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_snap_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        let meta = CheckpointMeta {
            fingerprint: 0xABCD,
            seed: 3,
            levels_total: 2,
            levels_done: 2,
            threads: 1,
            objective: 1,
            math: 0,
        };
        let snap = MetricsSnapshot {
            counters: vec![("train.batches".into(), 120), ("train.epochs".into(), 6)],
        };
        store.write_meta_with_metrics(&meta, &snap).unwrap();
        let (got_meta, got_snap) = store.read_meta_with_metrics().unwrap();
        assert_eq!(got_meta, meta);
        assert_eq!(got_snap, Some(snap));
        // The plain accessor still works and simply drops the snapshot.
        assert_eq!(store.read_meta().unwrap(), meta);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version2_meta_without_snapshot_still_loads() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_v2_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        // Hand-build a v2 record: 40-byte payload, version word 2.
        let mut payload = Vec::with_capacity(40);
        for w in [0xBEEFu64, 11, 3, 1, 8] {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&2u32.to_le_bytes());
        write_section(&mut buf, &payload).unwrap();
        std::fs::write(dir.join("meta.hgck"), &buf).unwrap();
        let (meta, snap) = store.read_meta_with_metrics().unwrap();
        assert_eq!(meta.fingerprint, 0xBEEF);
        assert_eq!(meta.threads, 8);
        assert_eq!(meta.objective, 0, "v2 records read back objective 0 (edge)");
        assert_eq!(snap, None, "v2 records carry no snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version3_meta_without_objective_still_loads() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_v3_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        // Hand-build a v3 record: 40 fixed bytes + empty snapshot,
        // version word 3 — no objective word.
        let mut payload = Vec::with_capacity(44);
        for w in [0xF00Du64, 5, 2, 1, 2] {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        payload.extend_from_slice(&MetricsSnapshot::default().encode());
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&3u32.to_le_bytes());
        write_section(&mut buf, &payload).unwrap();
        std::fs::write(dir.join("meta.hgck"), &buf).unwrap();
        let meta = store.read_meta().unwrap();
        assert_eq!(meta.fingerprint, 0xF00D);
        assert_eq!(meta.threads, 2);
        assert_eq!(meta.objective, 0, "v3 records read back objective 0 (edge)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_state_refuses_objective_mismatch_before_fingerprint() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_obj_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        let meta = CheckpointMeta {
            fingerprint: 0x1111,
            seed: 1,
            levels_total: 2,
            levels_done: 0,
            threads: 1,
            objective: 0,
            math: 0,
        };
        store.write_meta(&meta).unwrap();
        // Wrong objective AND wrong fingerprint: the objective error
        // must win, naming both losses.
        let err = store.load_state(0x2222, 2, 1, 0).unwrap_err();
        assert_eq!(err.exit_code(), 2, "objective mismatch is a config error: {err}");
        let msg = err.to_string();
        assert!(msg.contains("objective"), "{msg}");
        assert!(msg.contains("`edge`") && msg.contains("`contrastive`"), "{msg}");
        // Matching objective falls through to the fingerprint check.
        let err = store.load_state(0x2222, 2, 0, 0).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // Everything matching loads (no levels done, so no level files).
        let (got, levels) = store.load_state(0x1111, 2, 0, 0).unwrap();
        assert_eq!(got, meta);
        assert!(levels.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_state_refuses_math_mismatch_before_fingerprint() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_math_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        let meta = CheckpointMeta {
            fingerprint: 0x3333,
            seed: 1,
            levels_total: 2,
            levels_done: 0,
            threads: 1,
            objective: 0,
            math: 0,
        };
        store.write_meta(&meta).unwrap();
        // Matching objective, wrong math AND wrong fingerprint: the
        // math error must win, naming both tiers.
        let err = store.load_state(0x4444, 2, 0, 1).unwrap_err();
        assert_eq!(err.exit_code(), 2, "math mismatch is a config error: {err}");
        let msg = err.to_string();
        assert!(msg.contains("math tier"), "{msg}");
        assert!(msg.contains("`bitwise`") && msg.contains("`fast`"), "{msg}");
        // Matching math falls through to the fingerprint check.
        let err = store.load_state(0x4444, 2, 0, 0).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        let (got, levels) = store.load_state(0x3333, 2, 0, 0).unwrap();
        assert_eq!(got, meta);
        assert!(levels.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version4_meta_without_math_still_loads() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_v4_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        // Hand-build a v4 record: 48 fixed bytes + empty snapshot,
        // version word 4 — no math word.
        let mut payload = Vec::with_capacity(52);
        for w in [0xCAFEu64, 5, 2, 1, 2, 1] {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        payload.extend_from_slice(&MetricsSnapshot::default().encode());
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&4u32.to_le_bytes());
        write_section(&mut buf, &payload).unwrap();
        std::fs::write(dir.join("meta.hgck"), &buf).unwrap();
        let meta = store.read_meta().unwrap();
        assert_eq!(meta.fingerprint, 0xCAFE);
        assert_eq!(meta.objective, 1);
        assert_eq!(meta.math, 0, "v4 records read back math 0 (bitwise)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v3_meta_with_undecodable_snapshot_is_corrupt() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_badsnap_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        // Fixed words plus snapshot bytes that claim one entry but stop
        // short — CRC is valid, so only snapshot decoding can object.
        let mut payload = Vec::with_capacity(48);
        for w in [1u64, 2, 3, 1, 4] {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        payload.extend_from_slice(&1u32.to_le_bytes()); // entry_count = 1
        payload.extend_from_slice(&4u32.to_le_bytes()); // name_len = 4, then nothing
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&3u32.to_le_bytes());
        write_section(&mut buf, &payload).unwrap();
        std::fs::write(dir.join("meta.hgck"), &buf).unwrap();
        let err = store.read_meta().unwrap_err();
        assert_eq!(err.exit_code(), 4, "expected corruption, got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            FaultPlan::parse("crash-after-level=2"),
            Ok(FaultPlan::CrashAfterLevel(2))
        );
        assert_eq!(
            FaultPlan::parse("crash-after-epoch=1:4"),
            Ok(FaultPlan::CrashAfterEpoch { level: 1, epoch: 4 })
        );
        assert_eq!(
            FaultPlan::parse("truncate=1:100"),
            Ok(FaultPlan::TruncateCheckpoint { level: 1, keep_bytes: 100 })
        );
        assert_eq!(
            FaultPlan::parse("corrupt=2:37:255"),
            Ok(FaultPlan::CorruptCheckpoint { level: 2, offset: 37, mask: 255 })
        );
        assert!(FaultPlan::parse("explode=1").is_err());
        assert!(FaultPlan::parse("truncate=1").is_err());
        assert!(FaultPlan::parse("crash-after-level=x").is_err());
    }

    #[test]
    fn chaos_fault_spec_parsing() {
        assert_eq!(
            FaultPlan::parse("worker-panic=1:0:2"),
            Ok(FaultPlan::WorkerPanic { level: 1, epoch: 0, shard: 2 })
        );
        assert_eq!(
            FaultPlan::parse("io-error=save-level:2"),
            Ok(FaultPlan::TransientIo { site: WriteSite::SaveLevel, failures: 2 })
        );
        assert_eq!(
            FaultPlan::parse("io-error=metrics-report:1"),
            Ok(FaultPlan::TransientIo { site: WriteSite::MetricsReport, failures: 1 })
        );
        assert_eq!(
            FaultPlan::parse("stall=2:1:10000"),
            Ok(FaultPlan::StallEpoch { level: 2, epoch: 1, virtual_ms: 10000 })
        );
        assert!(FaultPlan::parse("io-error=ramdisk:1").is_err(), "unknown site must be rejected");
        assert!(FaultPlan::parse("worker-panic=1:0").is_err());
        // Every site round-trips through its spec token.
        for site in WriteSite::ALL {
            assert_eq!(
                FaultPlan::parse(&format!("io-error={}:3", site.spec_token())),
                Ok(FaultPlan::TransientIo { site, failures: 3 })
            );
        }
    }

    #[test]
    fn seeded_corruptions_differ_by_seed() {
        let a = FaultPlan::seeded_corruption(1, 1);
        let b = FaultPlan::seeded_corruption(1, 2);
        assert_ne!(a, b);
        assert_eq!(a, FaultPlan::seeded_corruption(1, 1), "must be deterministic");
    }

    #[test]
    fn missing_meta_is_io_not_corrupt() {
        let dir = std::env::temp_dir().join(format!("hignn_ckpt_none_{}", std::process::id()));
        let store = CheckpointStore::create(&dir).unwrap();
        let err = store.read_meta().unwrap_err();
        assert_eq!(err.exit_code(), 3, "missing file is I/O, got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
