//! Structured errors for training, persistence, and recovery.
//!
//! Every fallible operation in the crash-safety layer surfaces a
//! [`HignnError`] instead of panicking, and each variant maps to a
//! distinct process exit code (used by the `hignn` binary) so operators
//! and supervisors can tell an I/O failure from data corruption from
//! numeric divergence without parsing messages.

use std::fmt;
use std::io;
use std::path::Path;

/// The error type of the `hignn` crate's fallible APIs.
#[derive(Debug)]
pub enum HignnError {
    /// An operating-system I/O failure (file missing, permission,
    /// disk full). Exit code 3.
    Io {
        /// What was being accessed (usually a path).
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A file parsed but failed validation: bad magic, checksum
    /// mismatch, truncation, implausible lengths. Exit code 4.
    Corrupt {
        /// Which artifact failed (e.g. `checkpoint level 2`).
        what: String,
        /// Why it failed.
        detail: String,
    },
    /// Training produced a non-finite loss or parameter and the
    /// configured policy said to stop. Exit code 5.
    Diverged {
        /// 1-based hierarchy level that diverged.
        level: usize,
        /// 0-based epoch within that level.
        epoch: usize,
        /// What was observed (e.g. `loss = NaN`).
        detail: String,
    },
    /// Invalid configuration or usage (bad flag combination,
    /// mismatched resume inputs). Exit code 2.
    Config(String),
    /// A deliberately injected fault from a
    /// [`crate::checkpoint::FaultPlan`] (testing only). Exit code 6.
    FaultInjected {
        /// Where the simulated crash happened.
        description: String,
    },
    /// The build's watchdog deadline expired and the run performed a
    /// graceful checkpoint-and-abort: every completed level is durable
    /// and the run is resumable. Exit code 7 — distinct from a crash so
    /// supervisors can tell "slow but healthy, resume me" from every
    /// failure class.
    DeadlineExceeded {
        /// Total elapsed build time (including injected virtual delay)
        /// when the watchdog fired, in milliseconds.
        elapsed_ms: u64,
        /// The configured deadline, in milliseconds.
        deadline_ms: u64,
        /// Hierarchy levels durably completed before the abort.
        levels_done: usize,
    },
}

impl HignnError {
    /// Wraps an I/O error with the path or operation it came from.
    /// `InvalidData` errors are promoted to [`HignnError::Corrupt`]
    /// since that is how the readers in `io`/`serialize` report
    /// validation failures.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        let context = context.into();
        if source.kind() == io::ErrorKind::InvalidData {
            HignnError::Corrupt { what: context, detail: source.to_string() }
        } else {
            HignnError::Io { context, source }
        }
    }

    /// Shorthand for [`HignnError::io`] with a filesystem path context.
    pub fn io_path(path: &Path, source: io::Error) -> Self {
        Self::io(path.display().to_string(), source)
    }

    /// Builds a [`HignnError::Corrupt`].
    pub fn corrupt(what: impl Into<String>, detail: impl Into<String>) -> Self {
        HignnError::Corrupt { what: what.into(), detail: detail.into() }
    }

    /// The process exit code the `hignn` binary uses for this error.
    /// Distinct per failure class: 2 usage/config, 3 I/O, 4 corruption,
    /// 5 divergence, 6 injected fault, 7 deadline exceeded.
    pub fn exit_code(&self) -> i32 {
        match self {
            HignnError::Config(_) => 2,
            HignnError::Io { .. } => 3,
            HignnError::Corrupt { .. } => 4,
            HignnError::Diverged { .. } => 5,
            HignnError::FaultInjected { .. } => 6,
            HignnError::DeadlineExceeded { .. } => 7,
        }
    }

    /// Whether this error is *transient* — plausibly cured by retrying
    /// the same operation — as opposed to *fatal*, where a retry would
    /// deterministically fail again (corruption, bad config) or hide a
    /// real problem (divergence).
    ///
    /// The split is the admission policy of [`crate::retry::with_retry`]:
    /// only transient errors are retried. The taxonomy is deliberately
    /// conservative — an I/O error qualifies only when its kind is one
    /// the OS documents as momentary (`EINTR`-style interruption,
    /// timeouts, would-block, busy/quota conditions a supervisor can
    /// clear); everything else stays fatal so retries never mask a
    /// genuinely broken disk path.
    pub fn is_transient(&self) -> bool {
        match self {
            HignnError::Io { source, .. } => matches!(
                source.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::ResourceBusy
                    | io::ErrorKind::QuotaExceeded
                    | io::ErrorKind::StorageFull
            ),
            HignnError::Corrupt { .. }
            | HignnError::Diverged { .. }
            | HignnError::Config(_)
            | HignnError::FaultInjected { .. }
            | HignnError::DeadlineExceeded { .. } => false,
        }
    }
}

impl fmt::Display for HignnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HignnError::Io { context, source } => write!(f, "I/O error: {context}: {source}"),
            HignnError::Corrupt { what, detail } => {
                write!(f, "corrupt data: {what}: {detail}")
            }
            HignnError::Diverged { level, epoch, detail } => write!(
                f,
                "training diverged at level {level}, epoch {epoch}: {detail} \
                 (rerun with a checkpoint directory to enable rollback)"
            ),
            HignnError::Config(msg) => write!(f, "{msg}"),
            HignnError::FaultInjected { description } => {
                write!(f, "injected fault: {description}")
            }
            HignnError::DeadlineExceeded { elapsed_ms, deadline_ms, levels_done } => write!(
                f,
                "watchdog deadline exceeded: {elapsed_ms}ms elapsed against a {deadline_ms}ms \
                 deadline; {levels_done} level(s) checkpointed — resume with --resume to continue"
            ),
        }
    }
}

impl std::error::Error for HignnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HignnError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct() {
        let errors = [
            HignnError::Config("x".into()),
            HignnError::io("f", io::Error::new(io::ErrorKind::NotFound, "gone")),
            HignnError::corrupt("f", "bad crc"),
            HignnError::Diverged { level: 1, epoch: 2, detail: "NaN".into() },
            HignnError::FaultInjected { description: "crash".into() },
            HignnError::DeadlineExceeded { elapsed_ms: 10, deadline_ms: 5, levels_done: 1 },
        ];
        let mut codes: Vec<i32> = errors.iter().map(HignnError::exit_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "exit codes must be distinct");
        assert!(!codes.contains(&0) && !codes.contains(&1));
    }

    #[test]
    fn transient_classification_follows_the_documented_taxonomy() {
        let transient = |kind| HignnError::io("f", io::Error::new(kind, "x")).is_transient();
        assert!(transient(io::ErrorKind::Interrupted));
        assert!(transient(io::ErrorKind::TimedOut));
        assert!(transient(io::ErrorKind::StorageFull));
        assert!(!transient(io::ErrorKind::NotFound));
        assert!(!transient(io::ErrorKind::PermissionDenied));
        // InvalidData promotes to Corrupt, which is fatal by definition.
        assert!(!transient(io::ErrorKind::InvalidData));
        assert!(!HignnError::Config("x".into()).is_transient());
        assert!(!HignnError::corrupt("f", "bad crc").is_transient());
        assert!(!HignnError::Diverged { level: 1, epoch: 0, detail: "NaN".into() }.is_transient());
        assert!(!HignnError::DeadlineExceeded { elapsed_ms: 2, deadline_ms: 1, levels_done: 0 }
            .is_transient());
    }

    #[test]
    fn invalid_data_promotes_to_corrupt() {
        let e = HignnError::io("model.hgh", io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        assert!(matches!(e, HignnError::Corrupt { .. }));
        assert_eq!(e.exit_code(), 4);
        let e = HignnError::io("model.hgh", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(matches!(e, HignnError::Io { .. }));
        assert_eq!(e.exit_code(), 3);
    }
}
