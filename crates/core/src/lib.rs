//! # hignn
//!
//! A from-scratch Rust implementation of **HiGNN** — *Hierarchical
//! Bipartite Graph Neural Networks: Towards Large-Scale E-commerce
//! Applications* (Li et al., ICDE 2020).
//!
//! HiGNN stacks bipartite GraphSAGE modules and a deterministic clustering
//! algorithm alternately: each level trains a two-sided GraphSAGE on the
//! current bipartite graph, K-means clusters both sides' embeddings, and
//! the clusters become the vertices of a coarsened graph for the next
//! level. The result is *hierarchical user preference* and *hierarchical
//! item attractiveness* embeddings used for CVR/CTR prediction
//! (Section IV) and unsupervised topic-driven taxonomy construction
//! (Section V).
//!
//! Modules:
//!
//! * [`builder`] — validated builder-style configuration
//!   ([`HignnBuilder`] → [`TrainSpec`]), the preferred entry point.
//! * [`sage`] — bipartite GraphSAGE (Eqs. 1-4; shared-weight query-item
//!   variant of Eqs. 8-11).
//! * [`trainer`] — unsupervised edge-reconstruction training with negative
//!   sampling (Eqs. 5, 12).
//! * [`stack`] — the HiGNN hierarchy (Algorithm 1), coarsening via Eq. 6.
//! * [`predictor`] — the supervised DNN of Fig. 2 (Eq. 7).
//! * [`taxonomy`] — topic-driven taxonomy with representative-query
//!   descriptions (Eqs. 13-16).
//! * [`io`] — binary persistence for trained hierarchies (CRC-checked
//!   sections, atomic writes).
//! * [`ingest`] — streaming edge ingestion: inductive inference for new
//!   vertices, incremental cluster maintenance with bounded re-coarsen,
//!   and the CRC-framed `HGHD` delta format for replica catch-up.
//! * [`checkpoint`] — crash-safe per-level training checkpoints, resume,
//!   and a deterministic fault-injection harness.
//! * [`error`] — structured errors with distinct process exit codes.
//! * [`model`] — trained model with fold-in inference for unseen users.
//! * [`recommend`] — top-K recommendation and evaluation utilities.
//!
//! ## Quickstart
//!
//! ```
//! use hignn::prelude::*;
//! use hignn_graph::BipartiteGraph;
//! use hignn_tensor::init;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A toy 2-community user-item graph.
//! let mut edges = Vec::new();
//! for u in 0..20u32 {
//!     let base = if u < 10 { 0 } else { 10 };
//!     for k in 0..4u32 { edges.push((u, base + (u + k) % 10, 1.0)); }
//! }
//! let graph = BipartiteGraph::from_edges(20, 20, edges);
//! let mut rng = StdRng::seed_from_u64(0);
//! let user_feats = init::xavier_uniform(20, 8, &mut rng);
//! let item_feats = init::xavier_uniform(20, 8, &mut rng);
//!
//! let hierarchy = HignnBuilder::new()
//!     .levels(2)
//!     .input_dim(8)
//!     .embedding_dim(8)
//!     .fanouts(vec![3, 2])
//!     .epochs(1)
//!     .batch_edges(32)
//!     .alpha_decay(4.0)
//!     .seed(7)
//!     .build()
//!     .expect("validated configuration")
//!     .run(&graph, &user_feats, &item_feats)
//!     .expect("infallible without checkpointing or guard");
//! assert_eq!(hierarchy.hierarchical_users().rows(), 20);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod checkpoint;
pub mod crc32;
pub mod error;
pub mod ingest;
pub mod io;
pub mod model;
pub mod objective;
pub mod predictor;
pub mod recommend;
pub mod retry;
pub mod sage;
pub mod stack;
pub mod supervise;
pub mod taxonomy;
pub mod trainer;

/// Convenient re-exports of the main API surface.
pub mod prelude {
    pub use crate::builder::{HignnBuilder, TrainSpec};
    pub use crate::checkpoint::{
        run_fingerprint, CheckpointMeta, CheckpointStore, FaultPlan, WriteSite,
    };
    pub use crate::error::HignnError;
    pub use crate::ingest::{
        apply_delta, hierarchy_fingerprint, load_delta, read_delta_bytes, save_delta, write_delta,
        HierarchyDelta, IngestConfig, IngestEngine, IngestReport, NodeArrival,
    };
    pub use crate::objective::{
        ClusterConstraint, EdgeReconstruction, HierarchicalContrastive, Objective, ObjectiveCtx,
        ObjectiveKind, ObjectiveSpec, ShardBatch,
    };
    pub use crate::predictor::{CvrPredictor, FeatureBlocks, PredictorConfig, Sample};
    pub use crate::sage::{Aggregator, BipartiteSage, BipartiteSageConfig};
    pub use crate::stack::{
        build_hierarchy, build_hierarchy_with, BuildOptions, ClusterCounts, GuardPolicy,
        Hierarchy, HignnConfig, KMeansAlgo, Level,
    };
    pub use crate::taxonomy::{build_taxonomy, Taxonomy, TaxonomyConfig, Topic};
    pub use crate::model::HignnModel;
    pub use crate::recommend::{evaluate_top_k, recommend_top_k, TopKReport};
    pub use crate::retry::{with_retry, RecordingSleeper, RetryPolicy, Sleeper, WallSleeper};
    pub use crate::supervise::{IoFaultArm, PanicOnce, Watchdog};
    pub use crate::trainer::{
        train_unsupervised, train_unsupervised_checked, train_with_objective, EpochHooks,
        SageTrainConfig, TrainError, TrainGuard, TrainedSage,
    };
    pub use hignn_tensor::ParallelExecutor;
}

pub use prelude::*;
