//! Top-K recommendation on top of the CVR predictor.
//!
//! The paper's introduction motivates HiGNN with *"improving the
//! performance of top-K recommendation and preference ranking"*; this
//! module provides the serving-side utilities: rank a candidate set for
//! a user with a trained predictor, and evaluate precision/recall@K
//! against held-out purchases.

use crate::predictor::{CvrPredictor, FeatureBlocks, Sample};
use std::collections::{HashMap, HashSet};

/// Scores `candidates` for `user` and returns the top `k` as
/// `(item, probability)`, best first. Ties break toward the smaller
/// item id (deterministic).
pub fn recommend_top_k(
    model: &CvrPredictor,
    features: &FeatureBlocks,
    user: u32,
    candidates: &[u32],
    k: usize,
) -> Vec<(u32, f32)> {
    let samples: Vec<Sample> =
        candidates.iter().map(|&i| Sample::new(user, i, false)).collect();
    let probs = model.predict(features, &samples);
    let mut scored: Vec<(u32, f32)> =
        candidates.iter().copied().zip(probs).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Precision@K / recall@K of top-K recommendations against a set of
/// held-out positive `(user, item)` pairs.
///
/// For every user with at least one held-out positive, the model ranks
/// `candidates` and the top `k` are checked against that user's
/// positives; metrics are averaged over users (macro average, the usual
/// top-K protocol).
pub fn evaluate_top_k(
    model: &CvrPredictor,
    features: &FeatureBlocks,
    positives: &[(u32, u32)],
    candidates: &[u32],
    k: usize,
) -> TopKReport {
    let mut by_user: HashMap<u32, HashSet<u32>> = HashMap::new();
    for &(u, i) in positives {
        by_user.entry(u).or_default().insert(i);
    }
    let mut users: Vec<u32> = by_user.keys().copied().collect();
    users.sort_unstable();
    let mut precision = 0f64;
    let mut recall = 0f64;
    let mut hit_users = 0usize;
    for &u in &users {
        let wanted = &by_user[&u];
        let top = recommend_top_k(model, features, u, candidates, k);
        let hits = top.iter().filter(|(i, _)| wanted.contains(i)).count();
        precision += hits as f64 / k.max(1) as f64;
        recall += hits as f64 / wanted.len() as f64;
        if hits > 0 {
            hit_users += 1;
        }
    }
    let n = users.len().max(1) as f64;
    TopKReport {
        users: users.len(),
        precision_at_k: precision / n,
        recall_at_k: recall / n,
        hit_rate: hit_users as f64 / n,
        k,
    }
}

/// Macro-averaged top-K metrics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopKReport {
    /// Users evaluated (those with at least one held-out positive).
    pub users: usize,
    /// Mean precision@K.
    pub precision_at_k: f64,
    /// Mean recall@K.
    pub recall_at_k: f64,
    /// Fraction of users with at least one hit in their top K.
    pub hit_rate: f64,
    /// The K used.
    pub k: usize,
}

impl std::fmt::Display for TopKReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P@{} {:.4} | R@{} {:.4} | hit-rate {:.4} ({} users)",
            self.k, self.precision_at_k, self.k, self.recall_at_k, self.hit_rate, self.users
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorConfig;
    use hignn_tensor::Matrix;

    /// A predictor trained so that user u likes item u (diagonal signal
    /// through the hierarchical blocks).
    fn diagonal_model() -> (CvrPredictor, Matrix, Matrix, Matrix, Matrix) {
        let n = 12;
        let uh = Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });
        let ih = uh.clone();
        let up = Matrix::zeros(n, 1);
        let is = Matrix::zeros(n, 1);
        let mut train = Vec::new();
        for u in 0..n as u32 {
            for i in 0..n as u32 {
                train.push(Sample::new(u, i, u == i));
            }
        }
        let features = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let model = CvrPredictor::train(
            &features,
            &train,
            &PredictorConfig { epochs: 60, batch: 64, hidden: vec![24], lr: 5e-3, ..Default::default() },
        );
        (model, uh, ih, up, is)
    }

    #[test]
    fn top_k_ranks_the_diagonal_item_first() {
        let (model, uh, ih, up, is) = diagonal_model();
        let features = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let candidates: Vec<u32> = (0..12).collect();
        let mut correct = 0;
        for u in 0..12u32 {
            let top = recommend_top_k(&model, &features, u, &candidates, 3);
            assert_eq!(top.len(), 3);
            if top[0].0 == u {
                correct += 1;
            }
        }
        assert!(correct >= 9, "only {correct}/12 users got their item first");
    }

    #[test]
    fn evaluate_top_k_reports_sane_metrics() {
        let (model, uh, ih, up, is) = diagonal_model();
        let features = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let candidates: Vec<u32> = (0..12).collect();
        let positives: Vec<(u32, u32)> = (0..12).map(|u| (u, u)).collect();
        let report = evaluate_top_k(&model, &features, &positives, &candidates, 3);
        assert_eq!(report.users, 12);
        assert!(report.recall_at_k > 0.7, "recall {}", report.recall_at_k);
        assert!(report.hit_rate >= report.recall_at_k - 1e-9);
        // Each user has exactly 1 positive: precision@3 = recall/3.
        assert!((report.precision_at_k - report.recall_at_k / 3.0).abs() < 1e-9);
    }

    #[test]
    fn top_k_clamps_and_is_deterministic() {
        let (model, uh, ih, up, is) = diagonal_model();
        let features = FeatureBlocks {
            user_hier: Some(&uh),
            item_hier: Some(&ih),
            user_profiles: &up,
            item_stats: &is,
        };
        let candidates = vec![3u32, 5];
        let a = recommend_top_k(&model, &features, 1, &candidates, 10);
        let b = recommend_top_k(&model, &features, 1, &candidates, 10);
        assert_eq!(a.len(), 2); // clamped to candidate count
        assert_eq!(a, b);
    }
}
