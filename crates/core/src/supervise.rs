//! Run supervision: the watchdog deadline and armed chaos faults.
//!
//! This module holds the *mutable* runtime state behind the supervised
//! execution runtime. [`crate::checkpoint::FaultPlan`] is a declarative,
//! `Copy` description of one fault; `build_hierarchy_with` arms it into
//! the stateful forms here (a one-shot panic trigger, a depleting
//! transient-I/O failure budget) and threads them — together with the
//! [`Watchdog`] — through the level/epoch loops.
//!
//! ## Watchdog semantics
//!
//! The watchdog measures one monotonic quantity: real elapsed time
//! since the build started **plus** any injected virtual delay
//! ([`FaultPlan::StallEpoch`] advances the virtual component so tests
//! exercise deadline expiry without wall-sleeping). It is checked at
//! every epoch boundary and before every level; on expiry the build
//! performs a graceful checkpoint-and-abort — every completed level is
//! already durable, so the run exits with
//! [`crate::error::HignnError::DeadlineExceeded`] (exit code 7) and
//! `--resume` continues it byte-identically. The deadline can make a
//! run *stop*, never change what it computes: a resumed run replays
//! the same per-level RNG streams as an undeadlined one.

use crate::checkpoint::{FaultPlan, WriteSite};
use crate::error::HignnError;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Deadline watchdog for a hierarchy build: real elapsed time plus an
/// injectable virtual component, checked at epoch and level boundaries.
#[derive(Debug)]
pub struct Watchdog {
    start: Instant,
    deadline: Duration,
    virtual_ms: AtomicU64,
}

impl Watchdog {
    /// Starts a watchdog whose deadline is `deadline` from now.
    pub fn new(deadline: Duration) -> Self {
        Watchdog { start: Instant::now(), deadline, virtual_ms: AtomicU64::new(0) }
    }

    /// Advances the virtual clock (injected stalls; testing only).
    pub fn advance_ms(&self, ms: u64) {
        self.virtual_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Total observed elapsed time: real + virtual, in milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        (self.start.elapsed().as_millis() as u64)
            .saturating_add(self.virtual_ms.load(Ordering::Relaxed))
    }

    /// The configured deadline in milliseconds.
    pub fn deadline_ms(&self) -> u64 {
        self.deadline.as_millis() as u64
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.elapsed_ms() >= self.deadline_ms()
    }

    /// The graceful-abort error for a build that had `levels_done`
    /// levels durably checkpointed when the deadline fired.
    pub fn abort_error(&self, levels_done: usize) -> HignnError {
        HignnError::DeadlineExceeded {
            elapsed_ms: self.elapsed_ms(),
            deadline_ms: self.deadline_ms(),
            levels_done,
        }
    }
}

/// An armed [`FaultPlan::TransientIo`]: a depleting budget of injected
/// write failures at one named site.
#[derive(Debug)]
pub struct IoFaultArm {
    site: WriteSite,
    remaining: AtomicU32,
}

impl IoFaultArm {
    /// Arms the transient-I/O fault of `plan`, if it carries one.
    pub fn from_plan(plan: Option<FaultPlan>) -> Option<IoFaultArm> {
        match plan {
            Some(FaultPlan::TransientIo { site, failures }) => {
                Some(IoFaultArm { site, remaining: AtomicU32::new(failures) })
            }
            _ => None,
        }
    }

    /// Called by a write site before doing real I/O: fails with a
    /// transient error while this arm still has failure budget for the
    /// site, succeeds (forever after) once the budget is spent.
    pub fn check(&self, site: WriteSite) -> Result<(), HignnError> {
        if site != self.site {
            return Ok(());
        }
        let spent = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        if spent {
            Err(HignnError::Io {
                context: site.name().to_string(),
                source: io::Error::new(
                    io::ErrorKind::Interrupted,
                    "injected transient I/O fault",
                ),
            })
        } else {
            Ok(())
        }
    }
}

/// An armed [`FaultPlan::WorkerPanic`]: panics inside the matching
/// (epoch, shard) worker dispatch exactly once. The supervised executor
/// recovers by re-executing the shard — by then the trigger is spent,
/// so the re-execution succeeds and must be bitwise identical.
#[derive(Debug)]
pub struct PanicOnce {
    epoch: usize,
    shard: usize,
    armed: AtomicBool,
}

impl PanicOnce {
    /// Arms a one-shot panic for shard `shard` of epoch `epoch`.
    pub fn new(epoch: usize, shard: usize) -> Self {
        PanicOnce { epoch, shard, armed: AtomicBool::new(true) }
    }

    /// Panics if `(epoch, shard)` matches and the trigger is unspent.
    pub fn fire_if_match(&self, epoch: usize, shard: usize) {
        if epoch == self.epoch && shard == self.shard && self.armed.swap(false, Ordering::Relaxed)
        {
            panic!("injected worker panic: epoch {epoch}, shard {shard}");
        }
    }

    /// Whether the trigger already fired.
    pub fn fired(&self) -> bool {
        !self.armed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_expires_on_virtual_time_without_sleeping() {
        let w = Watchdog::new(Duration::from_secs(3600));
        assert!(!w.expired());
        w.advance_ms(3_600_000);
        assert!(w.expired(), "virtual delay alone must trip the deadline");
        let err = w.abort_error(2);
        assert_eq!(err.exit_code(), 7);
        assert!(!err.is_transient());
        match err {
            HignnError::DeadlineExceeded { levels_done, deadline_ms, elapsed_ms } => {
                assert_eq!(levels_done, 2);
                assert_eq!(deadline_ms, 3_600_000);
                assert!(elapsed_ms >= deadline_ms);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn io_fault_arm_depletes_then_heals() {
        let arm =
            IoFaultArm::from_plan(Some(FaultPlan::TransientIo { site: WriteSite::WriteMeta, failures: 2 }))
                .unwrap();
        // Other sites are never affected.
        assert!(arm.check(WriteSite::SaveLevel).is_ok());
        let first = arm.check(WriteSite::WriteMeta).unwrap_err();
        assert!(first.is_transient(), "injected fault must classify as transient");
        assert_eq!(first.exit_code(), 3);
        assert!(arm.check(WriteSite::WriteMeta).is_err());
        assert!(arm.check(WriteSite::WriteMeta).is_ok(), "budget spent: site heals");
        assert!(arm.check(WriteSite::WriteMeta).is_ok());
    }

    #[test]
    fn non_io_plans_do_not_arm() {
        assert!(IoFaultArm::from_plan(Some(FaultPlan::CrashAfterLevel(1))).is_none());
        assert!(IoFaultArm::from_plan(None).is_none());
    }

    #[test]
    fn panic_once_fires_exactly_once_for_the_matching_shard() {
        let p = PanicOnce::new(1, 2);
        p.fire_if_match(0, 2); // wrong epoch: no panic
        p.fire_if_match(1, 0); // wrong shard: no panic
        assert!(!p.fired());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.fire_if_match(1, 2);
        }));
        assert!(caught.is_err());
        assert!(p.fired());
        p.fire_if_match(1, 2); // spent: no second panic
    }
}
