//! Streaming edge ingestion and incremental hierarchy maintenance.
//!
//! The paper's production story (Sec. III.D) assumes the graph keeps
//! growing: new users, new items, and new interactions arrive after the
//! expensive hierarchy was trained. This module implements the
//! steady-state half of that story:
//!
//! * **Inductive inference** for unseen vertices: a new node's level-1
//!   embedding is the weighted mean of the *trained* same-side rows two
//!   hops away — for a new item, the items it shares users with; for a
//!   new user, the users it shares items with — with each two-hop path
//!   contributing the product of its edge weights. Same-side means stay
//!   in the node's own embedding space (user and item embeddings are
//!   trained jointly but are not interchangeable), which is what makes
//!   the inferred rows rankable; chains of fresh nodes still resolve
//!   because the intermediate hop may itself be new. A node whose
//!   two-hop frontier contains no trained row falls back to the
//!   one-hop cross-side mean Cascade-BGNN motivates, and keeps a zero
//!   row only if even that is unresolvable.
//! * **Streaming cluster maintenance**: new nodes stream through the
//!   same MacQueen [`SequentialKMeans`] machinery the paper's
//!   single-pass clustering uses, resumed from the trained level-1
//!   cluster means and sizes ([`SequentialKMeans::from_state`]), so
//!   each arrival lands on an existing centroid and nudges it by the
//!   running-mean rule. Per-cluster **drift** (squared distance of the
//!   live centroid from its last committed position) is tracked, and
//!   when a cluster's drift crosses [`IngestConfig::drift_threshold`]
//!   only *that dirty subtree* is re-coarsened: its members are
//!   re-assigned against the live centroids (cost `O(|members|·k·d)`,
//!   never the full dataset) and the affected centroids are recommitted
//!   to exact member means.
//! * **A versioned delta format** (`HGHD`, CRC-framed sections with the
//!   same corruption discipline as the v2 model format) so a serving
//!   replica can catch up via [`apply_delta`] without a full reload.
//!   Deltas carry base and patched hierarchy fingerprints: applying a
//!   delta to the wrong base — or applying it twice — fails closed with
//!   [`HignnError::Corrupt`] before any mutation.
//!
//! Upper-level embeddings and the GraphSAGE weights stay frozen; that
//! staleness is deliberate (it is what makes ingestion cheap) and is
//! measured by the `ingest` bench as the incremental-vs-full-retrain
//! link-prediction AUC gap.

use crate::error::HignnError;
use crate::io::{atomic_write, write_hierarchy, SectionCursor};
use crate::stack::Hierarchy;
use hignn_cluster::kmeans::mean_by_cluster;
use hignn_cluster::streaming::SequentialKMeans;
use hignn_graph::serialize::{read_graph, write_graph};
use hignn_graph::{coarsen, Assignment, BipartiteGraph, Side};
use hignn_tensor::Matrix;
use std::io::{self, Write};
use std::path::Path;

const DELTA_MAGIC: &[u8; 4] = b"HGHD";
/// Current delta format version.
pub const DELTA_FORMAT_VERSION: u32 = 1;

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------
// Hierarchy fingerprints.

/// FNV-1a sink over the canonical v2 byte encoding.
struct FnvWriter {
    hash: u64,
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &b in buf {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Order-sensitive 64-bit fingerprint of a hierarchy: FNV-1a over its
/// canonical v2 encoding, streamed without materialising the bytes.
/// Two hierarchies fingerprint equal iff they serialise bit-identically
/// — the identity the delta protocol's base/patched checks rely on.
pub fn hierarchy_fingerprint(h: &Hierarchy) -> u64 {
    let mut w = FnvWriter { hash: 0xCBF2_9CE4_8422_2325 };
    write_hierarchy(&mut w, h).expect("in-memory hash write cannot fail");
    w.hash
}

// ---------------------------------------------------------------------
// The delta format.

/// One newly arrived vertex: the level-1 cluster it was streamed into
/// and its inferred level-1 embedding row.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeArrival {
    /// Level-1 cluster id assigned at observe time (pre-move).
    pub cluster: u32,
    /// Inferred level-1 embedding (one row, level-1 width).
    pub embedding: Vec<f32>,
}

/// A versioned, self-validating patch from one hierarchy state to the
/// next — everything a replica needs to catch up without a full reload.
///
/// On disk (`HGHD` v1) every section is CRC-framed exactly like the v2
/// model format, so truncation and bit-flips fail closed:
///
/// ```text
/// delta   := "HGHD" u32(version=1) section(header) section(new_edges)
///            section(new_users) section(new_items)
///            section(user_moves) section(item_moves) section(graph)*
/// section := u64(payload_len) payload u32(crc32 of payload)
/// header  := u64(seq) u64(base_users) u64(base_items)
///            u64(base_fingerprint) u64(patched_fingerprint)
///            u64(num_new_users) u64(num_new_items)
///            u64(num_user_moves) u64(num_item_moves)
///            u64(num_new_edges) u64(num_levels)
/// ```
#[derive(Clone, Debug)]
pub struct HierarchyDelta {
    /// Monotone sequence number (1 = first delta after the base model).
    pub seq: u64,
    /// Users in the base hierarchy this delta applies to.
    pub base_users: u64,
    /// Items in the base hierarchy this delta applies to.
    pub base_items: u64,
    /// [`hierarchy_fingerprint`] of the base hierarchy.
    pub base_fingerprint: u64,
    /// [`hierarchy_fingerprint`] of the patched hierarchy.
    pub patched_fingerprint: u64,
    /// Newly ingested edges, in post-extension id space (audit record;
    /// replicas patch structure from the fields below).
    pub new_edges: Vec<(u32, u32, f32)>,
    /// New users in id order (`base_users`, `base_users + 1`, ...).
    pub new_users: Vec<NodeArrival>,
    /// New items in id order.
    pub new_items: Vec<NodeArrival>,
    /// Level-1 user re-assignments `(vertex, new_cluster)` from the
    /// bounded re-coarsen, in application order.
    pub user_moves: Vec<(u32, u32)>,
    /// Level-1 item re-assignments.
    pub item_moves: Vec<(u32, u32)>,
    /// Replacement coarsened graph per level (finest first), rebuilt
    /// canonically from the grown base graph.
    pub coarsened: Vec<BipartiteGraph>,
}

fn write_u64_vec(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn arrivals_payload(arrivals: &[NodeArrival]) -> Vec<u8> {
    let dim = arrivals.first().map_or(0, |a| a.embedding.len());
    let mut buf = Vec::with_capacity(8 + arrivals.len() * (4 + dim * 4));
    write_u64_vec(&mut buf, dim as u64);
    for a in arrivals {
        buf.extend_from_slice(&a.cluster.to_le_bytes());
        for &v in &a.embedding {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf
}

fn parse_arrivals(payload: &[u8], count: usize, what: &str) -> io::Result<Vec<NodeArrival>> {
    if payload.len() < 8 {
        return Err(bad_data(&format!("{what}: truncated arrival header")));
    }
    let dim = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
    let per = 4usize
        .checked_add(dim.checked_mul(4).ok_or_else(|| bad_data(&format!("{what}: huge dim")))?)
        .ok_or_else(|| bad_data(&format!("{what}: huge dim")))?;
    let expect = 8 + count
        .checked_mul(per)
        .ok_or_else(|| bad_data(&format!("{what}: huge arrival count")))?;
    if payload.len() != expect {
        return Err(bad_data(&format!(
            "{what}: payload is {} bytes, expected {expect} for {count} arrivals of dim {dim}",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    let mut pos = 8;
    for _ in 0..count {
        let cluster = u32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap());
        pos += 4;
        let mut embedding = Vec::with_capacity(dim);
        for _ in 0..dim {
            embedding.push(f32::from_le_bytes(payload[pos..pos + 4].try_into().unwrap()));
            pos += 4;
        }
        out.push(NodeArrival { cluster, embedding });
    }
    Ok(out)
}

fn moves_payload(moves: &[(u32, u32)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(moves.len() * 8);
    for &(v, c) in moves {
        buf.extend_from_slice(&v.to_le_bytes());
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf
}

fn parse_moves(payload: &[u8], count: usize, what: &str) -> io::Result<Vec<(u32, u32)>> {
    let expect = count.checked_mul(8).ok_or_else(|| bad_data(&format!("{what}: huge count")))?;
    if payload.len() != expect {
        return Err(bad_data(&format!(
            "{what}: payload is {} bytes, expected {expect} for {count} moves",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for chunk in payload.chunks_exact(8) {
        out.push((
            u32::from_le_bytes(chunk[..4].try_into().unwrap()),
            u32::from_le_bytes(chunk[4..].try_into().unwrap()),
        ));
    }
    Ok(out)
}

fn edges_payload(edges: &[(u32, u32, f32)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(edges.len() * 12);
    for &(u, i, w) in edges {
        buf.extend_from_slice(&u.to_le_bytes());
        buf.extend_from_slice(&i.to_le_bytes());
        buf.extend_from_slice(&w.to_le_bytes());
    }
    buf
}

fn parse_edges(payload: &[u8], count: usize, what: &str) -> io::Result<Vec<(u32, u32, f32)>> {
    let expect = count.checked_mul(12).ok_or_else(|| bad_data(&format!("{what}: huge count")))?;
    if payload.len() != expect {
        return Err(bad_data(&format!(
            "{what}: payload is {} bytes, expected {expect} for {count} edges",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for chunk in payload.chunks_exact(12) {
        out.push((
            u32::from_le_bytes(chunk[..4].try_into().unwrap()),
            u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
            f32::from_le_bytes(chunk[8..].try_into().unwrap()),
        ));
    }
    Ok(out)
}

/// Encodes a delta in the current (`HGHD` v1, CRC-framed) format.
pub fn write_delta<W: Write>(w: &mut W, d: &HierarchyDelta) -> io::Result<()> {
    use crate::io::write_section;
    w.write_all(DELTA_MAGIC)?;
    w.write_all(&DELTA_FORMAT_VERSION.to_le_bytes())?;
    let mut header = Vec::with_capacity(88);
    for v in [
        d.seq,
        d.base_users,
        d.base_items,
        d.base_fingerprint,
        d.patched_fingerprint,
        d.new_users.len() as u64,
        d.new_items.len() as u64,
        d.user_moves.len() as u64,
        d.item_moves.len() as u64,
        d.new_edges.len() as u64,
        d.coarsened.len() as u64,
    ] {
        write_u64_vec(&mut header, v);
    }
    write_section(w, &header)?;
    write_section(w, &edges_payload(&d.new_edges))?;
    write_section(w, &arrivals_payload(&d.new_users))?;
    write_section(w, &arrivals_payload(&d.new_items))?;
    write_section(w, &moves_payload(&d.user_moves))?;
    write_section(w, &moves_payload(&d.item_moves))?;
    for g in &d.coarsened {
        let mut payload = Vec::new();
        write_graph(&mut payload, g)?;
        write_section(w, &payload)?;
    }
    Ok(())
}

/// Decodes a delta from an in-memory image, CRC-verifying every section
/// before parsing it — truncation, bit-flips, and implausible lengths
/// all surface as `InvalidData`, never a panic or a silently wrong
/// patch.
pub fn read_delta_bytes(bytes: &[u8]) -> io::Result<HierarchyDelta> {
    if bytes.len() < 8 {
        return Err(bad_data("delta: truncated before version word"));
    }
    if &bytes[..4] != DELTA_MAGIC {
        return Err(bad_data("delta: bad magic"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != DELTA_FORMAT_VERSION {
        return Err(bad_data(&format!(
            "delta: unsupported version {version} (this build reads v1)"
        )));
    }
    let mut cursor = SectionCursor::new(&bytes[8..]);
    let header = cursor.next_section("delta header")?;
    if header.len() != 88 {
        return Err(bad_data(&format!("delta header: expected 88 bytes, got {}", header.len())));
    }
    let word = |i: usize| u64::from_le_bytes(header[i * 8..(i + 1) * 8].try_into().unwrap());
    let seq = word(0);
    let base_users = word(1);
    let base_items = word(2);
    let base_fingerprint = word(3);
    let patched_fingerprint = word(4);
    let num_new_users = word(5) as usize;
    let num_new_items = word(6) as usize;
    let num_user_moves = word(7) as usize;
    let num_item_moves = word(8) as usize;
    let num_new_edges = word(9) as usize;
    let num_levels = word(10) as usize;
    if num_levels > 64 {
        return Err(bad_data("delta: implausible level count"));
    }
    let new_edges = parse_edges(cursor.next_section("delta edges")?, num_new_edges, "delta edges")?;
    let new_users =
        parse_arrivals(cursor.next_section("delta new users")?, num_new_users, "delta new users")?;
    let new_items =
        parse_arrivals(cursor.next_section("delta new items")?, num_new_items, "delta new items")?;
    let user_moves =
        parse_moves(cursor.next_section("delta user moves")?, num_user_moves, "delta user moves")?;
    let item_moves =
        parse_moves(cursor.next_section("delta item moves")?, num_item_moves, "delta item moves")?;
    let mut coarsened = Vec::with_capacity(num_levels);
    for l in 0..num_levels {
        let what = format!("delta level {} graph", l + 1);
        let payload = cursor.next_section(&what)?;
        let mut slice = payload;
        let g = read_graph(&mut slice)?;
        if !slice.is_empty() {
            return Err(bad_data(&format!("{what}: {} trailing bytes", slice.len())));
        }
        coarsened.push(g);
    }
    if !cursor.is_exhausted() {
        return Err(bad_data(&format!(
            "delta: {} trailing bytes after the last section",
            cursor.remaining()
        )));
    }
    Ok(HierarchyDelta {
        seq,
        base_users,
        base_items,
        base_fingerprint,
        patched_fingerprint,
        new_edges,
        new_users,
        new_items,
        user_moves,
        item_moves,
        coarsened,
    })
}

/// Saves a delta atomically (temp + fsync + rename, like model saves).
pub fn save_delta(path: impl AsRef<Path>, d: &HierarchyDelta) -> io::Result<()> {
    let mut bytes = Vec::new();
    write_delta(&mut bytes, d)?;
    atomic_write(path.as_ref(), &bytes)
}

/// Loads a delta from a file.
pub fn load_delta(path: impl AsRef<Path>) -> io::Result<HierarchyDelta> {
    let bytes = std::fs::read(path)?;
    read_delta_bytes(&bytes)
}

// ---------------------------------------------------------------------
// Applying a delta.

fn append_arrival_rows(m: Matrix, arrivals: &[NodeArrival]) -> Matrix {
    let (rows, cols) = m.shape();
    let mut data = m.into_data();
    for a in arrivals {
        debug_assert_eq!(a.embedding.len(), cols);
        data.extend_from_slice(&a.embedding);
    }
    Matrix::from_vec(rows + arrivals.len(), cols, data)
}

fn corrupt(detail: String) -> HignnError {
    HignnError::corrupt("delta", &detail)
}

/// Patches `h` in place with `delta` — the replica catch-up path.
///
/// All checks run **before** any mutation: base user/item counts, the
/// base fingerprint (which also rejects a delta applied twice or out of
/// order), arrival dimensions and cluster ranges, move ranges, and the
/// replacement coarsened-graph shapes. A delta that fails any check
/// leaves `h` untouched and returns [`HignnError::Corrupt`]. After
/// patching, the result must fingerprint to `patched_fingerprint`, so a
/// replica can never silently diverge from the ingesting writer.
pub fn apply_delta(h: &mut Hierarchy, delta: &HierarchyDelta) -> Result<(), HignnError> {
    // ---- read-only validation ----
    if delta.base_users != h.num_users() as u64 || delta.base_items != h.num_items() as u64 {
        return Err(corrupt(format!(
            "base shape mismatch: delta expects {}x{}, hierarchy has {}x{}",
            delta.base_users,
            delta.base_items,
            h.num_users(),
            h.num_items()
        )));
    }
    if delta.coarsened.len() != h.num_levels() {
        return Err(corrupt(format!(
            "level count mismatch: delta has {}, hierarchy has {}",
            delta.coarsened.len(),
            h.num_levels()
        )));
    }
    let base_fp = hierarchy_fingerprint(h);
    if base_fp != delta.base_fingerprint {
        return Err(corrupt(format!(
            "base fingerprint mismatch (expected {:#018x}, hierarchy is {base_fp:#018x}) — \
             wrong base model, or delta already applied / out of order",
            delta.base_fingerprint
        )));
    }
    let l0 = &h.levels()[0];
    let checks = [
        (&delta.new_users, l0.user_embeddings.cols(), l0.user_assignment.num_clusters(), "user"),
        (&delta.new_items, l0.item_embeddings.cols(), l0.item_assignment.num_clusters(), "item"),
    ];
    for (arrivals, dim, k, side) in checks {
        for (idx, a) in arrivals.iter().enumerate() {
            if a.embedding.len() != dim {
                return Err(corrupt(format!(
                    "new {side} {idx}: embedding dim {} != level-1 dim {dim}",
                    a.embedding.len()
                )));
            }
            if a.cluster as usize >= k {
                return Err(corrupt(format!(
                    "new {side} {idx}: cluster {} out of range (k = {k})",
                    a.cluster
                )));
            }
        }
    }
    let move_checks = [
        (&delta.user_moves, h.num_users() + delta.new_users.len(),
         l0.user_assignment.num_clusters(), "user"),
        (&delta.item_moves, h.num_items() + delta.new_items.len(),
         l0.item_assignment.num_clusters(), "item"),
    ];
    for (moves, n, k, side) in move_checks {
        for &(v, c) in moves.iter() {
            if v as usize >= n || c as usize >= k {
                return Err(corrupt(format!("{side} move ({v} -> {c}) out of range")));
            }
        }
    }
    for (l, g) in delta.coarsened.iter().enumerate() {
        let level = &h.levels()[l];
        if g.num_left() != level.user_assignment.num_clusters()
            || g.num_right() != level.item_assignment.num_clusters()
        {
            return Err(corrupt(format!(
                "level {} coarsened graph is {}x{}, expected {}x{}",
                l + 1,
                g.num_left(),
                g.num_right(),
                level.user_assignment.num_clusters(),
                level.item_assignment.num_clusters()
            )));
        }
    }

    // ---- mutation (mirrors the ingesting engine bit for bit) ----
    let (levels, num_users, num_items) = h.parts_mut();
    {
        let l0 = &mut levels[0];
        let ku = l0.user_assignment.num_clusters();
        let ki = l0.item_assignment.num_clusters();
        l0.user_embeddings = append_arrival_rows(
            std::mem::replace(&mut l0.user_embeddings, Matrix::zeros(0, 0)),
            &delta.new_users,
        );
        l0.item_embeddings = append_arrival_rows(
            std::mem::replace(&mut l0.item_embeddings, Matrix::zeros(0, 0)),
            &delta.new_items,
        );
        let mut ua: Vec<u32> = l0.user_assignment.as_slice().to_vec();
        ua.extend(delta.new_users.iter().map(|a| a.cluster));
        for &(v, c) in &delta.user_moves {
            ua[v as usize] = c;
        }
        let mut ia: Vec<u32> = l0.item_assignment.as_slice().to_vec();
        ia.extend(delta.new_items.iter().map(|a| a.cluster));
        for &(v, c) in &delta.item_moves {
            ia[v as usize] = c;
        }
        l0.user_assignment = Assignment::new(ua, ku);
        l0.item_assignment = Assignment::new(ia, ki);
    }
    for (level, g) in levels.iter_mut().zip(&delta.coarsened) {
        level.coarsened = g.clone();
    }
    *num_users += delta.new_users.len();
    *num_items += delta.new_items.len();
    h.validate().map_err(|e| corrupt(format!("patched hierarchy invalid: {e}")))?;
    let patched = hierarchy_fingerprint(h);
    if patched != delta.patched_fingerprint {
        return Err(corrupt(format!(
            "patched fingerprint mismatch (delta says {:#018x}, got {patched:#018x})",
            delta.patched_fingerprint
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The ingesting engine.

/// Tuning knobs of the [`IngestEngine`].
#[derive(Clone, Copy, Debug)]
pub struct IngestConfig {
    /// Squared-distance drift a level-1 centroid may accumulate (from
    /// its last committed position) before its cluster is marked dirty
    /// and re-coarsened. Embeddings are unit-norm under the default
    /// training config, so squared distances live in `[0, 4]`.
    /// `f32::INFINITY` disables re-coarsening.
    pub drift_threshold: f32,
    /// L2-normalise inferred embeddings — must match the training
    /// config's `normalize` (true under the default pipeline).
    pub normalize: bool,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { drift_threshold: 0.05, normalize: true }
    }
}

/// What one [`IngestEngine::ingest`] call did.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestReport {
    /// New users appended.
    pub new_users: usize,
    /// New items appended.
    pub new_items: usize,
    /// Edges ingested.
    pub new_edges: usize,
    /// Users re-assigned by the bounded re-coarsen.
    pub moved_users: usize,
    /// Items re-assigned by the bounded re-coarsen.
    pub moved_items: usize,
    /// User clusters whose drift crossed the threshold.
    pub dirty_user_clusters: usize,
    /// Item clusters whose drift crossed the threshold.
    pub dirty_item_clusters: usize,
    /// Largest per-cluster user drift observed (squared distance).
    pub max_user_drift: f32,
    /// Largest per-cluster item drift observed.
    pub max_item_drift: f32,
    /// User clusters currently empty (reported, never auto-reseeded —
    /// serving needs stable cluster ids).
    pub dead_user_clusters: usize,
    /// Item clusters currently empty.
    pub dead_item_clusters: usize,
}

/// Per-side streaming state: the live MacQueen estimator plus each
/// centroid's last *committed* position (the drift baseline).
struct SideState {
    skm: SequentialKMeans,
    baseline: Matrix,
}

impl SideState {
    fn from_level(embeddings: &Matrix, assignment: &Assignment) -> SideState {
        // Exact member means in id order — identical whether the
        // hierarchy is fresh in memory or reloaded from disk, which is
        // what makes ingest-then-save ≡ save-then-ingest bitwise.
        let centroids =
            mean_by_cluster(embeddings, assignment.as_slice(), assignment.num_clusters());
        let counts = assignment.sizes();
        SideState { baseline: centroids.clone(), skm: SequentialKMeans::from_state(centroids, counts) }
    }
}

/// The writer side of streaming ingestion: owns the evolving hierarchy,
/// the full (finest) interaction graph, and the per-side streaming
/// cluster state. Each [`IngestEngine::ingest`] call appends a batch of
/// edges and emits the [`HierarchyDelta`] that brings a replica to the
/// same state.
pub struct IngestEngine {
    hierarchy: Hierarchy,
    graph: BipartiteGraph,
    cfg: IngestConfig,
    users: SideState,
    items: SideState,
    seq: u64,
    fingerprint: u64,
}

impl IngestEngine {
    /// Builds an engine over a trained hierarchy and the finest-level
    /// interaction graph it was trained on.
    ///
    /// Fails with [`HignnError::Config`] if the graph shape does not
    /// match the hierarchy, or if the level-1 user and item embedding
    /// widths differ (cross-side neighbour-mean inference needs a
    /// shared space).
    pub fn new(
        hierarchy: Hierarchy,
        graph: BipartiteGraph,
        cfg: IngestConfig,
    ) -> Result<IngestEngine, HignnError> {
        if graph.num_left() != hierarchy.num_users() || graph.num_right() != hierarchy.num_items()
        {
            return Err(HignnError::Config(format!(
                "ingest: graph is {}x{} but hierarchy covers {}x{}",
                graph.num_left(),
                graph.num_right(),
                hierarchy.num_users(),
                hierarchy.num_items()
            )));
        }
        let l0 = &hierarchy.levels()[0];
        if l0.user_embeddings.cols() != l0.item_embeddings.cols() {
            return Err(HignnError::Config(format!(
                "ingest: level-1 user dim {} != item dim {} (shared space required)",
                l0.user_embeddings.cols(),
                l0.item_embeddings.cols()
            )));
        }
        let users = SideState::from_level(&l0.user_embeddings, &l0.user_assignment);
        let items = SideState::from_level(&l0.item_embeddings, &l0.item_assignment);
        let fingerprint = hierarchy_fingerprint(&hierarchy);
        Ok(IngestEngine { hierarchy, graph, cfg, users, items, seq: 0, fingerprint })
    }

    /// The evolving hierarchy (read-only).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The evolving finest-level graph (read-only).
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Sequence number of the last emitted delta (0 before any ingest).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Ingests one append-only edge batch. Edge endpoints at or beyond
    /// the current user/item counts declare new vertices (ids must be
    /// dense extensions; a gap id that never appears in an edge becomes
    /// an isolated zero-embedding vertex).
    ///
    /// Returns what happened plus the [`HierarchyDelta`] that replays
    /// it on a replica of the pre-ingest hierarchy.
    pub fn ingest(
        &mut self,
        new_edges: &[(u32, u32, f32)],
    ) -> Result<(IngestReport, HierarchyDelta), HignnError> {
        let old_u = self.hierarchy.num_users();
        let old_i = self.hierarchy.num_items();
        let mut new_u = old_u;
        let mut new_i = old_i;
        for &(u, i, w) in new_edges {
            if !w.is_finite() || w <= 0.0 {
                return Err(HignnError::Config(format!(
                    "ingest: edge ({u}, {i}) has non-positive or non-finite weight {w}"
                )));
            }
            new_u = new_u.max(u as usize + 1);
            new_i = new_i.max(i as usize + 1);
        }

        // Rebuild the finest graph through the same deterministic
        // `from_edges` path training used (merge parallel edges in
        // input order, then sort).
        let mut all_edges: Vec<(u32, u32, f32)> = self.graph.edges().to_vec();
        all_edges.extend_from_slice(new_edges);
        let graph = BipartiteGraph::from_edges(new_u, new_i, all_edges);

        // Inductive level-1 embeddings for the new vertices: weighted
        // two-hop same-side means over the grown graph.
        let (user_rows, item_rows) = self.infer_new_embeddings(&graph, old_u, old_i, new_u, new_i);

        // Stream each new vertex through the MacQueen estimator in id
        // order (users first) — the cluster it lands in is its level-1
        // assignment; the observe nudges the live centroid and accrues
        // drift.
        let new_users: Vec<NodeArrival> = user_rows
            .into_iter()
            .map(|embedding| NodeArrival { cluster: self.users.skm.observe(&embedding), embedding })
            .collect();
        let new_items: Vec<NodeArrival> = item_rows
            .into_iter()
            .map(|embedding| NodeArrival { cluster: self.items.skm.observe(&embedding), embedding })
            .collect();

        // Patch level 1: append embeddings and assignments.
        self.graph = graph;
        let threshold = self.cfg.drift_threshold;
        let (levels, num_users, num_items) = self.hierarchy.parts_mut();
        let ku = levels[0].user_assignment.num_clusters();
        let ki = levels[0].item_assignment.num_clusters();
        levels[0].user_embeddings = append_arrival_rows(
            std::mem::replace(&mut levels[0].user_embeddings, Matrix::zeros(0, 0)),
            &new_users,
        );
        levels[0].item_embeddings = append_arrival_rows(
            std::mem::replace(&mut levels[0].item_embeddings, Matrix::zeros(0, 0)),
            &new_items,
        );
        let mut ua: Vec<u32> = levels[0].user_assignment.as_slice().to_vec();
        ua.extend(new_users.iter().map(|a| a.cluster));
        let mut ia: Vec<u32> = levels[0].item_assignment.as_slice().to_vec();
        ia.extend(new_items.iter().map(|a| a.cluster));

        // Bounded re-coarsen of dirty subtrees.
        let (user_moves, dirty_u, max_user_drift) = drift_recoarsen(
            &mut self.users,
            &levels[0].user_embeddings,
            &mut ua,
            threshold,
        );
        let (item_moves, dirty_i, max_item_drift) = drift_recoarsen(
            &mut self.items,
            &levels[0].item_embeddings,
            &mut ia,
            threshold,
        );
        levels[0].user_assignment = Assignment::new(ua, ku);
        levels[0].item_assignment = Assignment::new(ia, ki);
        *num_users = new_u;
        *num_items = new_i;

        // Re-coarsen the whole chain canonically from the grown graph
        // (G^l = coarsen(G^{l-1}, A_l)) — cheap, and exactly the
        // training-time semantics. Upper-level embeddings stay frozen.
        let mut g = self.graph.clone();
        for level in levels.iter_mut() {
            let c = coarsen(&g, &level.user_assignment, &level.item_assignment);
            g = c.clone();
            level.coarsened = c;
        }

        self.hierarchy
            .validate()
            .map_err(|e| HignnError::corrupt("ingest", format!("patched hierarchy invalid: {e}")))?;
        let patched = hierarchy_fingerprint(&self.hierarchy);
        let base_fingerprint = self.fingerprint;
        self.fingerprint = patched;
        self.seq += 1;

        let report = IngestReport {
            new_users: new_users.len(),
            new_items: new_items.len(),
            new_edges: new_edges.len(),
            moved_users: user_moves.len(),
            moved_items: item_moves.len(),
            dirty_user_clusters: dirty_u,
            dirty_item_clusters: dirty_i,
            max_user_drift,
            max_item_drift,
            dead_user_clusters: self.users.skm.dead_clusters().len(),
            dead_item_clusters: self.items.skm.dead_clusters().len(),
        };
        let delta = HierarchyDelta {
            seq: self.seq,
            base_users: old_u as u64,
            base_items: old_i as u64,
            base_fingerprint,
            patched_fingerprint: patched,
            new_edges: new_edges.to_vec(),
            new_users,
            new_items,
            user_moves,
            item_moves,
            coarsened: self.hierarchy.levels().iter().map(|l| l.coarsened.clone()).collect(),
        };
        Ok((report, delta))
    }

    /// Weighted two-hop same-side inference for new vertices (see
    /// module docs): a new node averages the *trained* same-side rows
    /// reachable through any neighbour, each path weighted by the
    /// product of its two edge weights. Falls back to the one-hop
    /// cross-side mean over trained rows when the two-hop frontier is
    /// empty; keeps a zero row only if both fail.
    fn infer_new_embeddings(
        &self,
        graph: &BipartiteGraph,
        old_u: usize,
        old_i: usize,
        new_u: usize,
        new_i: usize,
    ) -> (Vec<Vec<f32>>, Vec<Vec<f32>>) {
        let l0 = &self.hierarchy.levels()[0];
        let dim = l0.user_embeddings.cols();
        let normalize = self.cfg.normalize;
        let finish = |sum: Vec<f32>, wsum: f32| -> Option<Vec<f32>> {
            if wsum <= 0.0 {
                return None;
            }
            let mut row: Vec<f32> = sum.iter().map(|v| v / wsum).collect();
            if normalize {
                let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
                if norm > 0.0 {
                    for v in &mut row {
                        *v /= norm;
                    }
                }
            }
            Some(row)
        };
        let infer_side = |side: Side, old_same: usize, hi: usize, same: &Matrix, opp: &Matrix, old_opp: usize| -> Vec<Vec<f32>> {
            let across = match side {
                Side::Left => Side::Right,
                Side::Right => Side::Left,
            };
            (old_same..hi)
                .map(|v| {
                    let (nbrs, weights) = graph.neighbors(side, v);
                    let mut sum = vec![0f32; dim];
                    let mut wsum = 0f32;
                    for (&o, &w1) in nbrs.iter().zip(weights) {
                        let (nbrs2, weights2) = graph.neighbors(across, o as usize);
                        for (&s, &w2) in nbrs2.iter().zip(weights2) {
                            if (s as usize) < old_same {
                                let w = w1 * w2;
                                wsum += w;
                                for (dst, &x) in sum.iter_mut().zip(same.row(s as usize)) {
                                    *dst += w * x;
                                }
                            }
                        }
                    }
                    if let Some(row) = finish(sum, wsum) {
                        return row;
                    }
                    let mut sum = vec![0f32; dim];
                    let mut wsum = 0f32;
                    for (&o, &w) in nbrs.iter().zip(weights) {
                        if (o as usize) < old_opp {
                            wsum += w;
                            for (dst, &x) in sum.iter_mut().zip(opp.row(o as usize)) {
                                *dst += w * x;
                            }
                        }
                    }
                    finish(sum, wsum).unwrap_or_else(|| vec![0f32; dim])
                })
                .collect()
        };
        let user_rows =
            infer_side(Side::Left, old_u, new_u, &l0.user_embeddings, &l0.item_embeddings, old_i);
        let item_rows =
            infer_side(Side::Right, old_i, new_i, &l0.item_embeddings, &l0.user_embeddings, old_u);
        (user_rows, item_rows)
    }
}

/// Drift check + bounded re-coarsen for one side. Returns the moves
/// made (in application order), the number of dirty clusters, and the
/// maximum drift observed. Only members of dirty clusters are
/// re-assigned (`O(|dirty members| · k · d)`); affected centroids are
/// then recommitted to exact member means and their baselines reset.
/// Clusters emptied by moves stay at their last position with count 0
/// (dead — reported, never auto-reseeded, so cluster ids stay stable
/// for serving).
fn drift_recoarsen(
    side: &mut SideState,
    emb: &Matrix,
    assignment: &mut [u32],
    threshold: f32,
) -> (Vec<(u32, u32)>, usize, f32) {
    let k = side.skm.centroids().rows();
    let mut max_drift = 0f32;
    let mut dirty = vec![false; k];
    let mut num_dirty = 0usize;
    for (c, dirty_c) in dirty.iter_mut().enumerate() {
        let d = side.skm.centroids().row_sq_dist(c, side.baseline.row(c));
        if d.is_finite() && d > max_drift {
            max_drift = d;
        }
        if d > threshold {
            *dirty_c = true;
            num_dirty += 1;
        }
    }
    let mut moves = Vec::new();
    if num_dirty == 0 {
        return (moves, 0, max_drift);
    }
    // Re-assign only dirty clusters' members, ascending id order.
    let mut affected = dirty.clone();
    for (v, slot) in assignment.iter_mut().enumerate() {
        let c = *slot as usize;
        if !dirty[c] {
            continue;
        }
        let nc = side.skm.assign(emb.row(v));
        if nc != *slot {
            moves.push((v as u32, nc));
            *slot = nc;
            affected[nc as usize] = true;
        }
    }
    // Recommit every affected centroid to the exact member mean
    // (accumulated in id order) and reset its drift baseline; a cluster
    // with no members left keeps its position with count 0.
    let d = emb.cols();
    let mut sums = vec![0f32; k * d];
    let mut counts = vec![0usize; k];
    for (v, &c) in assignment.iter().enumerate() {
        let c = c as usize;
        if !affected[c] {
            continue;
        }
        counts[c] += 1;
        for (s, &x) in sums[c * d..(c + 1) * d].iter_mut().zip(emb.row(v)) {
            *s += x;
        }
    }
    for c in 0..k {
        if !affected[c] {
            continue;
        }
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f32;
            let row: Vec<f32> = sums[c * d..(c + 1) * d].iter().map(|&s| s * inv).collect();
            side.skm.set_center(c, &row, counts[c]);
        } else {
            let row = side.skm.centroids().row(c).to_vec();
            side.skm.set_center(c, &row, 0);
        }
        let committed = side.skm.centroids().row(c).to_vec();
        side.baseline.set_row(c, &committed);
    }
    (moves, num_dirty, max_drift)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_hierarchy_bytes, write_hierarchy};
    use crate::stack::Level;
    use hignn_graph::BipartiteGraph;

    /// Hand-built 2-level hierarchy: 2 users, 4 items, unit-norm-ish
    /// dyadic embeddings so means stay exact.
    fn tiny() -> (Hierarchy, BipartiteGraph) {
        let level1 = Level {
            user_embeddings: Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            item_embeddings: Matrix::from_vec(
                4,
                2,
                vec![1.0, 0.0, 0.5, 0.5, -1.0, 0.0, -0.5, -0.5],
            ),
            user_assignment: Assignment::new(vec![0, 1], 2),
            item_assignment: Assignment::new(vec![0, 0, 1, 1], 2),
            coarsened: BipartiteGraph::from_edges(
                2,
                2,
                vec![(0, 0, 2.0), (1, 1, 2.0)],
            ),
            epoch_losses: vec![],
        };
        let level2 = Level {
            user_embeddings: Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]),
            item_embeddings: Matrix::from_vec(2, 2, vec![0.75, 0.25, -0.75, -0.25]),
            user_assignment: Assignment::new(vec![0, 0], 1),
            item_assignment: Assignment::new(vec![0, 0], 1),
            coarsened: BipartiteGraph::from_edges(1, 1, vec![(0, 0, 4.0)]),
            epoch_losses: vec![],
        };
        let h = Hierarchy::from_parts(vec![level1, level2], 2, 4).unwrap();
        let g = BipartiteGraph::from_edges(
            2,
            4,
            vec![(0, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0)],
        );
        (h, g)
    }

    fn hierarchy_bytes(h: &Hierarchy) -> Vec<u8> {
        let mut buf = Vec::new();
        write_hierarchy(&mut buf, h).unwrap();
        buf
    }

    #[test]
    fn fingerprint_tracks_content() {
        let (h, _) = tiny();
        let fp = hierarchy_fingerprint(&h);
        assert_eq!(fp, hierarchy_fingerprint(&h), "deterministic");
        let bytes = hierarchy_bytes(&h);
        let reloaded = read_hierarchy_bytes(&bytes).unwrap();
        assert_eq!(fp, hierarchy_fingerprint(&reloaded), "stable across roundtrip");
    }

    #[test]
    fn ingest_extends_and_delta_replays_bitwise() {
        let (h, g) = tiny();
        let mut replica = h.clone();
        let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
        // User 2 and items 4, 5 are new; user 2 buys old item 0 and the
        // new items; old user 1 also touches new item 4.
        let batch: Vec<(u32, u32, f32)> = vec![
            (2, 0, 1.0),
            (2, 4, 2.0),
            (2, 5, 1.0),
            (1, 4, 1.0),
        ];
        let (report, delta) = engine.ingest(&batch).unwrap();
        assert_eq!(report.new_users, 1);
        assert_eq!(report.new_items, 2);
        assert_eq!(delta.seq, 1);
        assert_eq!(engine.hierarchy().num_users(), 3);
        assert_eq!(engine.hierarchy().num_items(), 6);
        // New nodes have full hierarchical embeddings (chains resolve).
        assert_eq!(engine.hierarchy().hierarchical_user(2).len(), engine.hierarchy().user_dim());
        // Replica catches up via the delta, bit for bit.
        apply_delta(&mut replica, &delta).unwrap();
        assert_eq!(hierarchy_bytes(&replica), hierarchy_bytes(engine.hierarchy()));
    }

    #[test]
    fn delta_roundtrips_and_double_apply_is_rejected() {
        let (h, g) = tiny();
        let mut replica = h.clone();
        let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
        let (_, delta) = engine.ingest(&[(2, 4, 1.0), (2, 0, 1.0)]).unwrap();
        let mut bytes = Vec::new();
        write_delta(&mut bytes, &delta).unwrap();
        let back = read_delta_bytes(&bytes).unwrap();
        assert_eq!(back.seq, delta.seq);
        assert_eq!(back.new_users, delta.new_users);
        assert_eq!(back.new_items, delta.new_items);
        assert_eq!(back.user_moves, delta.user_moves);
        assert_eq!(back.new_edges, delta.new_edges);
        // Re-encoding the decoded delta is bitwise identical.
        let mut again = Vec::new();
        write_delta(&mut again, &back).unwrap();
        assert_eq!(bytes, again);

        apply_delta(&mut replica, &back).unwrap();
        let patched = hierarchy_bytes(&replica);
        // Applying the same delta again fails closed (here on the base
        // shape; same-shape double-applies die on the fingerprint) and
        // leaves the hierarchy untouched.
        let err = apply_delta(&mut replica, &back).unwrap_err();
        assert!(matches!(err, HignnError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("mismatch"), "{err}");
        assert_eq!(hierarchy_bytes(&replica), patched);
    }

    #[test]
    fn drift_threshold_triggers_bounded_recoarsen() {
        let (h, g) = tiny();
        // Tiny threshold: the very first arrivals should dirty their
        // clusters and trigger the re-coarsen path.
        let cfg = IngestConfig { drift_threshold: 1e-6, normalize: true };
        let mut replica = h.clone();
        let mut engine = IngestEngine::new(h, g, cfg).unwrap();
        let batch: Vec<(u32, u32, f32)> = vec![(2, 0, 1.0), (3, 1, 1.0), (2, 4, 1.0)];
        let (report, delta) = engine.ingest(&batch).unwrap();
        assert!(report.dirty_user_clusters > 0 || report.dirty_item_clusters > 0);
        assert!(report.max_user_drift > 0.0 || report.max_item_drift > 0.0);
        // The delta (including any moves) still replays bitwise.
        apply_delta(&mut replica, &delta).unwrap();
        assert_eq!(hierarchy_bytes(&replica), hierarchy_bytes(engine.hierarchy()));
    }

    #[test]
    fn sequential_deltas_have_monotone_seq_and_chain() {
        let (h, g) = tiny();
        let mut replica = h.clone();
        let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
        let batches: Vec<Vec<(u32, u32, f32)>> = vec![
            vec![(2, 0, 1.0)],
            vec![(2, 4, 1.0), (0, 4, 1.0)],
            vec![(3, 5, 1.0), (3, 0, 1.0)],
        ];
        let mut last_seq = 0;
        for batch in &batches {
            let (_, delta) = engine.ingest(batch).unwrap();
            assert_eq!(delta.seq, last_seq + 1, "monotone seq");
            last_seq = delta.seq;
            apply_delta(&mut replica, &delta).unwrap();
        }
        assert_eq!(hierarchy_bytes(&replica), hierarchy_bytes(engine.hierarchy()));
        // Coarsened totals match the grown graph (weight conservation
        // through the whole chain).
        let total = engine.graph().total_weight();
        for level in engine.hierarchy().levels() {
            assert!((level.coarsened.total_weight() - total).abs() < 1e-6);
        }
    }

    #[test]
    fn corrupt_and_truncated_deltas_fail_closed() {
        let (h, g) = tiny();
        let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
        let (_, delta) = engine.ingest(&[(2, 4, 1.5), (0, 4, 1.0)]).unwrap();
        let mut clean = Vec::new();
        write_delta(&mut clean, &delta).unwrap();
        // Every spread single-byte flip is detected.
        for pos in (0..clean.len()).step_by(17) {
            let mut evil = clean.clone();
            evil[pos] ^= 0x40;
            assert!(read_delta_bytes(&evil).is_err(), "flip at byte {pos} went undetected");
        }
        // Every prefix truncation errors instead of panicking.
        for cut in (0..clean.len()).step_by(23) {
            assert!(read_delta_bytes(&clean[..cut]).is_err(), "cut at {cut} accepted");
        }
        // Trailing garbage is rejected.
        let mut padded = clean.clone();
        padded.extend_from_slice(&[0u8; 7]);
        assert!(read_delta_bytes(&padded).is_err());
    }

    #[test]
    fn wrong_base_is_rejected_before_mutation() {
        let (h, g) = tiny();
        let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
        let (_, delta) = engine.ingest(&[(2, 0, 1.0)]).unwrap();
        // A hierarchy with different content (but same shape) must be
        // rejected by the fingerprint check, untouched.
        let (mut other, _) = tiny();
        {
            let (levels, _, _) = other.parts_mut();
            levels[0].user_embeddings.set(0, 0, 0.5);
        }
        let before = hierarchy_bytes(&other);
        let err = apply_delta(&mut other, &delta).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        assert_eq!(hierarchy_bytes(&other), before);
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn rejects_bad_weights_and_mismatched_graph() {
        let (h, g) = tiny();
        let mut engine = IngestEngine::new(h.clone(), g, IngestConfig::default()).unwrap();
        for w in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
            let err = engine.ingest(&[(2, 0, w)]).unwrap_err();
            assert!(matches!(err, HignnError::Config(_)), "weight {w}: {err}");
        }
        let small = BipartiteGraph::from_edges(1, 1, vec![(0, 0, 1.0)]);
        let err = match IngestEngine::new(h, small, IngestConfig::default()) {
            Err(e) => e,
            Ok(_) => panic!("mismatched graph accepted"),
        };
        assert!(matches!(err, HignnError::Config(_)), "{err}");
    }

    #[test]
    fn save_then_ingest_equals_ingest_then_save() {
        let (h, g) = tiny();
        let batch: Vec<(u32, u32, f32)> = vec![(2, 4, 1.0), (2, 0, 2.0), (1, 5, 1.0)];
        // Path 1: ingest in memory, then serialise.
        let mut e1 = IngestEngine::new(h.clone(), g.clone(), IngestConfig::default()).unwrap();
        e1.ingest(&batch).unwrap();
        let bytes1 = hierarchy_bytes(e1.hierarchy());
        // Path 2: serialise, reload, then ingest.
        let reloaded = read_hierarchy_bytes(&hierarchy_bytes(&h)).unwrap();
        let mut e2 = IngestEngine::new(reloaded, g, IngestConfig::default()).unwrap();
        e2.ingest(&batch).unwrap();
        let bytes2 = hierarchy_bytes(e2.hierarchy());
        assert_eq!(bytes1, bytes2, "ingest-then-save must equal save-then-ingest bitwise");
    }

    #[test]
    fn delta_file_roundtrip_is_atomic_and_loadable() {
        let (h, g) = tiny();
        let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
        let (_, delta) = engine.ingest(&[(2, 0, 1.0)]).unwrap();
        let dir = std::env::temp_dir().join(format!("hignn_ingest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d1.hgd");
        save_delta(&path, &delta).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let back = load_delta(&path).unwrap();
        assert_eq!(back.seq, delta.seq);
        assert_eq!(back.patched_fingerprint, delta.patched_fingerprint);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
