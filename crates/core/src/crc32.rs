//! CRC-32 (IEEE 802.3 polynomial) for checkpoint and hierarchy
//! integrity sections.
//!
//! Table-driven, byte-at-a-time. Matches the ubiquitous zlib/`cksum -o
//! 3` CRC so externally generated files can be checked with standard
//! tools.

/// Lazily built 256-entry table for the reflected polynomial
/// `0xEDB88320`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let data = vec![0xA5u8; 1024];
        let base = crc32(&data);
        for byte in [0usize, 13, 512, 1023] {
            for bit in [0u8, 3, 7] {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }
}
