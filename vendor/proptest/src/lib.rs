//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`0..10usize`, `-4.0f32..4.0`, `0.0f32..=1.0`),
//! * tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//! * [`collection::vec`], [`arbitrary::any`] (`bool`, integers),
//! * regex-subset string strategies (`"[a-z]{1,6}"`, `".{0,40}"`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics with the test name and case index, which is reproducible
//! because sampling is fully deterministic (seeded per test name).

pub mod strategy;

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's `Config`: only the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic per-test, per-case RNG (FNV-1a over the test path
    /// mixed with the case index).
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// `any::<T>()` strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniform value of the whole domain.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T` (`any::<bool>()`,
    /// `any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)` / `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Mirrors proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::sample(&strat, &mut __proptest_rng);
                // A closure so `prop_assume!` can skip the case via
                // early return; assertion failures panic (sampling is
                // deterministic per test name, so failures reproduce).
                let _ = case;
                (move || $body)();
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniformly picks one of several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}
