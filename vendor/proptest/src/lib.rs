//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range strategies (`0..10usize`, `-4.0f32..4.0`, `0.0f32..=1.0`),
//! * tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//! * [`collection::vec`], [`arbitrary::any`] (`bool`, integers),
//! * regex-subset string strategies (`"[a-z]{1,6}"`, `".{0,40}"`),
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Unlike upstream proptest there is **no shrinking**: a failing case
//! panics with the test name and case index, which is reproducible
//! because sampling is fully deterministic (seeded per test name).
//!
//! Two upstream behaviours *are* replicated (as vendored extensions):
//!
//! * the `PROPTEST_CASES` environment variable overrides every
//!   config's case count (used by CI's deep-test job), and
//! * failing case indices are persisted to
//!   `proptest-regressions/<test path>.txt` next to the owning crate's
//!   `Cargo.toml` and replayed *before* the regular cases on the next
//!   run, so a failure found once (e.g. under a large CI case count)
//!   keeps failing locally until fixed. Since sampling is seeded by
//!   `(test path, case index)`, the index alone is a complete
//!   reproduction recipe — that is this crate's stand-in for upstream's
//!   persisted shrunk seeds.

pub mod strategy;

/// Test-runner configuration (`ProptestConfig`) and the case driver.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};

    /// Subset of proptest's `Config`: only the case count.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count actually used: the `PROPTEST_CASES`
        /// environment variable when set to a positive integer,
        /// otherwise [`ProptestConfig::cases`].
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v.trim().parse::<u32>().ok().filter(|&n| n > 0).unwrap_or(self.cases),
                Err(_) => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic per-test, per-case RNG (FNV-1a over the test path
    /// mixed with the case index).
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }

    /// Where failing cases of `test_path` are persisted: a one-file-per-
    /// test text file under `<manifest_dir>/proptest-regressions/`.
    pub fn persistence_path(manifest_dir: &str, test_path: &str) -> PathBuf {
        let sanitized: String = test_path
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '-' })
            .collect();
        Path::new(manifest_dir).join("proptest-regressions").join(format!("{sanitized}.txt"))
    }

    /// Failing case indices previously recorded at `path` (empty when
    /// the file does not exist). Lines are `cc <index>`; anything else
    /// (comments, blanks) is ignored.
    pub fn persisted_cases(path: &Path) -> Vec<u32> {
        let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
        let mut cases = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.trim().strip_prefix("cc ") {
                if let Ok(case) = rest.trim().parse::<u32>() {
                    if !cases.contains(&case) {
                        cases.push(case);
                    }
                }
            }
        }
        cases
    }

    /// Appends `case` to the regression file at `path` (creating it,
    /// with a header, as needed; no-op if the case is already recorded).
    pub fn persist_case(path: &Path, case: u32) -> std::io::Result<()> {
        if persisted_cases(path).contains(&case) {
            return Ok(());
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut text = if path.exists() {
            std::fs::read_to_string(path)?
        } else {
            "# Seeds for failing proptest cases. Each `cc <index>` line is a case\n\
             # index replayed before the regular cases on every run; sampling is\n\
             # deterministic per (test path, index), so the index alone reproduces\n\
             # the input. Delete a line only when its failure is understood.\n"
                .to_string()
        };
        if !text.ends_with('\n') {
            text.push('\n');
        }
        text.push_str(&format!("cc {case}\n"));
        std::fs::write(path, text)
    }

    /// Runs one property: first every persisted regression case, then
    /// the regular cases `0..cases` (skipping already-replayed ones). A
    /// panicking fresh case is persisted before the panic is re-raised,
    /// so the failure replays on every subsequent run.
    pub fn drive(test_path: &str, manifest_dir: &str, cases: u32, run: impl Fn(u32)) {
        let path = persistence_path(manifest_dir, test_path);
        let persisted = persisted_cases(&path);
        for &case in &persisted {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(case))) {
                eprintln!(
                    "proptest: {test_path} persisted regression case {case} still fails \
                     (recorded in {})",
                    path.display()
                );
                resume_unwind(payload);
            }
        }
        for case in 0..cases {
            if persisted.contains(&case) {
                continue;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(case))) {
                match persist_case(&path, case) {
                    Ok(()) => eprintln!(
                        "proptest: {test_path} failed at case {case}; persisted to {} \
                         (replayed first on the next run)",
                        path.display()
                    ),
                    Err(e) => eprintln!(
                        "proptest: {test_path} failed at case {case}; could not persist \
                         to {}: {e}",
                        path.display()
                    ),
                }
                resume_unwind(payload);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicU32, Ordering};

        fn scratch_file(tag: &str) -> PathBuf {
            static COUNTER: AtomicU32 = AtomicU32::new(0);
            let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!(
                "hignn-proptest-{}-{unique}-{tag}",
                std::process::id()
            ))
        }

        #[test]
        fn persistence_path_sanitizes_module_separators() {
            let p = persistence_path("/crate", "tests::oracle::matmul_matches");
            assert_eq!(
                p,
                Path::new("/crate/proptest-regressions/tests--oracle--matmul_matches.txt")
            );
        }

        #[test]
        fn persist_and_read_back_roundtrip() {
            let dir = scratch_file("roundtrip");
            let path = dir.join("t.txt");
            assert!(persisted_cases(&path).is_empty());
            persist_case(&path, 17).unwrap();
            persist_case(&path, 3).unwrap();
            persist_case(&path, 17).unwrap(); // deduplicated
            assert_eq!(persisted_cases(&path), vec![17, 3]);
            let text = std::fs::read_to_string(&path).unwrap();
            assert!(text.starts_with('#'), "header comment expected:\n{text}");
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn drive_replays_persisted_cases_first_and_records_new_failures() {
            let dir = scratch_file("drive");
            let manifest = dir.to_str().unwrap().to_string();
            let path = persistence_path(&manifest, "t::prop");
            persist_case(&path, 40).unwrap(); // outside 0..cases, still replayed
            let seen = std::sync::Mutex::new(Vec::new());
            drive("t::prop", &manifest, 3, |case| {
                seen.lock().unwrap().push(case);
            });
            assert_eq!(*seen.lock().unwrap(), vec![40, 0, 1, 2]);

            // A failing fresh case gets persisted before the panic
            // propagates.
            let failed = catch_unwind(AssertUnwindSafe(|| {
                drive("t::prop", &manifest, 3, |case| assert_ne!(case, 2));
            }));
            assert!(failed.is_err());
            assert_eq!(persisted_cases(&path), vec![40, 2]);
            std::fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn env_var_overrides_configured_cases() {
            // Serialized by being the only test touching the variable.
            let cfg = ProptestConfig::with_cases(7);
            std::env::remove_var("PROPTEST_CASES");
            assert_eq!(cfg.resolved_cases(), 7);
            std::env::set_var("PROPTEST_CASES", "256");
            assert_eq!(cfg.resolved_cases(), 256);
            std::env::set_var("PROPTEST_CASES", "not a number");
            assert_eq!(cfg.resolved_cases(), 7);
            std::env::set_var("PROPTEST_CASES", "0");
            assert_eq!(cfg.resolved_cases(), 7);
            std::env::remove_var("PROPTEST_CASES");
        }
    }
}

/// `any::<T>()` strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one uniform value of the whole domain.
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T` (`any::<bool>()`,
    /// `any::<u64>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)` / `vec(element, lo..hi)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Mirrors proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strat = ($($strat,)+);
            // `drive` replays persisted regression cases first, then the
            // regular cases, persisting any fresh failure's index.
            // CARGO_MANIFEST_DIR resolves at the *expansion* site, so
            // the regression file lands next to the owning crate.
            $crate::test_runner::drive(
                concat!(module_path!(), "::", stringify!($name)),
                env!("CARGO_MANIFEST_DIR"),
                config.resolved_cases(),
                |case| {
                    let mut __proptest_rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&strat, &mut __proptest_rng);
                    // A closure so `prop_assume!` can skip the case via
                    // early return; assertion failures panic (sampling is
                    // deterministic per test name, so failures reproduce).
                    (move || $body)();
                },
            );
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniformly picks one of several strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}
