//! Strategies: deterministic value generators for property tests.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy simply draws a value from the given RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct OneOf<S> {
    arms: Vec<S>,
}

impl<S: Strategy> OneOf<S> {
    /// Builds the union; panics on an empty arm list.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let k = rng.gen_range(0..self.arms.len());
        self.arms[k].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategies from a regex subset.
///
/// Supported syntax: literal characters, `.` (drawn from a printable
/// pool including non-ASCII), character classes `[a-z0-9_]` (ranges and
/// singletons, no negation), and `{m}` / `{m,n}` repetition after an
/// atom. This covers the patterns the workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_regex(self, rng)
    }
}

/// Pool `.` draws from: ASCII text plus a few multi-byte characters so
/// tokenisation tests see non-trivial Unicode.
const DOT_POOL: &[char] = &[
    'a', 'b', 'c', 'x', 'y', 'z', 'A', 'B', 'Z', '0', '1', '9', ' ', '\t', '.', ',', '-', '_',
    '!', '?', '#', '/', 'é', 'ß', 'Ж', '中', '𝐴',
];

#[derive(Debug)]
enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
}

fn sample_regex(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in regex `{pattern}`"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in regex `{pattern}`"));
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty class in regex `{pattern}`");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex `{pattern}`")),
            ),
            other => Atom::Literal(other),
        };
        // Optional {m} / {m,n} repetition.
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for r in chars.by_ref() {
                if r == '}' {
                    break;
                }
                spec.push(r);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repeat lower bound"),
                    n.trim().parse::<usize>().expect("bad repeat upper bound"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("bad repeat count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(match &atom {
                Atom::Literal(c) => *c,
                Atom::Dot => DOT_POOL[rng.gen_range(0..DOT_POOL.len())],
                Atom::Class(ranges) => {
                    let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                    char::from_u32(rng.gen_range(a as u32..=b as u32)).unwrap_or(a)
                }
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = (2usize..5, -1.0f32..1.0, Just(7u8));
        for _ in 0..200 {
            let (a, b, c) = s.sample(&mut rng);
            assert!((2..5).contains(&a));
            assert!((-1.0..1.0).contains(&b));
            assert_eq!(c, 7);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = (1usize..4).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v))
        });
        for _ in 0..100 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn regex_subset_matches_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let w = "[a-z]{1,6}".sample(&mut rng);
            assert!((1..=6).contains(&w.chars().count()), "{w:?}");
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w:?}");
            let any = ".{0,40}".sample(&mut rng);
            assert!(any.chars().count() <= 40);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = OneOf::new(vec![Just(1u8), Just(2), Just(3)]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
