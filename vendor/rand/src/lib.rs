//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the *subset* of the `rand` 0.8 API the workspace
//! actually uses: [`rngs::StdRng`] (a seedable, deterministic PRNG),
//! the [`Rng`] extension trait (`gen_range`, `gen_bool`, `gen`),
//! [`SeedableRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is **xoshiro256\*\*** seeded through SplitMix64 — a
//! different stream than upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on *determinism for a
//! given seed* and on uniformity, never on the exact upstream stream.

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word (upper bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can draw uniformly.
///
/// A single blanket `SampleRange` impl over this trait (mirroring
/// upstream `rand`) is what lets type inference unify the range's item
/// type with the surrounding expression.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Uniform integer in `[0, bound)` by 128-bit multiply (Lemire).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(bounded_u64(rng, width) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded_u64(rng, width as u64) as $t)
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// User-facing extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// One uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirrors `rand::SeedableRng` (only the entry points this workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256\*\* over a
    /// SplitMix64-expanded seed). Stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Mirrors `rand::seq::SliceRandom` (`shuffle` and `choose`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniform Fisher-Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u32), b.gen_range(0..1_000_000u32));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u32> = (0..16).map(|_| c.gen_range(0..u32::MAX)).collect();
        let mut a2 = StdRng::seed_from_u64(7);
        let differs = (0..16).any(|k| a2.gen_range(0..u32::MAX) != same[k]);
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.choose(&mut rng).is_some());
    }
}
