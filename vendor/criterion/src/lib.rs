//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements just enough of criterion 0.5's API for this workspace's
//! benches to compile and produce useful output: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs a warm-up pass plus `sample_size` timed
//! iterations and prints the mean wall-clock time — no statistical
//! analysis, outlier detection, or plotting.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting
/// benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Times closures handed to `bench_function`.
pub struct Bencher {
    iterations: u64,
    total: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.total = start.elapsed();
    }
}

/// Identifies a parameterised benchmark (`BenchmarkId::new("x", n)`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` display form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_name.into()) }
    }
}

fn run_one(label: &str, samples: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iterations: samples, total: Duration::ZERO };
    f(&mut b);
    let mean = if b.iterations > 0 { b.total / b.iterations as u32 } else { Duration::ZERO };
    println!("{label:<50} {mean:>12.2?}/iter ({} iters)", b.iterations);
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark with the default sample size.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark group function calling each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
