//! Quickstart: build a HiGNN hierarchy on a small synthetic user-item
//! graph and inspect the hierarchical embeddings.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hignn-examples --bin quickstart
//! ```

use hignn::prelude::*;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_graph::GraphStats;

fn main() {
    // 1. A synthetic Taobao-like dataset (users x items click graph with
    //    a planted topic hierarchy).
    let ds = generate_taobao(&TaobaoConfig::taobao1(0.1));
    println!("generated dataset:\n{}\n", GraphStats::compute(&ds.graph));

    // 2. Configure HiGNN through the validated builder: 3 levels,
    //    bipartite GraphSAGE with d = 32, K-means cluster counts decaying
    //    by alpha = 5 per level, all available worker threads (the thread
    //    count never changes the result).
    let spec = HignnBuilder::new()
        .levels(3)
        .input_dim(ds.user_features.cols())
        .epochs(2)
        .trainable_features(true)
        .alpha_decay(5.0)
        .seed(7)
        .threads(ParallelExecutor::available().workers())
        .build()
        .expect("valid configuration");

    // 3. Build the hierarchy (Algorithm 1: GraphSAGE -> K-means ->
    //    coarsen, repeated L times).
    println!("training {} levels ...", spec.config().levels);
    let hierarchy = spec
        .run(&ds.graph, &ds.user_features, &ds.item_features)
        .expect("training failed");

    for (l, level) in hierarchy.levels().iter().enumerate() {
        println!(
            "level {}: {} user vertices -> {} clusters, {} item vertices -> {} clusters \
             (coarsened graph: {} edges), final unsupervised loss {:.4}",
            l + 1,
            level.user_embeddings.rows(),
            level.user_assignment.num_clusters(),
            level.item_embeddings.rows(),
            level.item_assignment.num_clusters(),
            level.coarsened.num_edges(),
            level.epoch_losses.last().copied().unwrap_or(f32::NAN),
        );
    }

    // 4. Hierarchical user preference / item attractiveness embeddings.
    let zu = hierarchy.hierarchical_users();
    let zi = hierarchy.hierarchical_items();
    println!(
        "\nhierarchical embeddings: users {}x{}, items {}x{}",
        zu.rows(),
        zu.cols(),
        zi.rows(),
        zi.cols()
    );

    // 5. Inspect one user's cluster chain up the hierarchy.
    let chain = hierarchy.user_chain(0);
    println!("user 0 cluster chain (vertex id per level): {chain:?}");
    println!(
        "user 0 preferred ground-truth path (for comparison): {:?}",
        ds.truth.user_paths[0]
    );
}
