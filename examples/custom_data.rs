//! Bring your own data: build a HiGNN hierarchy from a plain text edge
//! list (the format real click logs export to), without any of the
//! synthetic generators.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hignn-examples --bin custom_data
//! ```

use hignn::io::{load_hierarchy, save_hierarchy};
use hignn::prelude::*;
use hignn_graph::edgelist::read_edge_list;
use hignn_tensor::init;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Pretend this arrived from your data warehouse: `user item clicks`
    // per line, arbitrary ids, comments allowed.
    let mut log = String::from("# user item clicks\n");
    let mut rng = StdRng::seed_from_u64(77);
    for user in 0..120u64 {
        let community = user % 3;
        for _ in 0..6 {
            let item = 1000 + community * 40 + rng.gen_range(0..40u64);
            let clicks = rng.gen_range(1..4);
            log.push_str(&format!("{user} {item} {clicks}\n"));
        }
    }

    // 1. Parse: ids are compacted to dense ranges; the maps let you
    //    translate back.
    let parsed = read_edge_list(log.as_bytes()).expect("valid edge list");
    println!(
        "parsed {} users x {} items, {} edges (original item ids like {})",
        parsed.graph.num_left(),
        parsed.graph.num_right(),
        parsed.graph.num_edges(),
        parsed.right_ids[0],
    );

    // 2. No vertex features in a bare click log: use random tables and
    //    let the trainer fine-tune them (trainable_features).
    let dim = 16;
    let scale = 1.0 / (dim as f32).sqrt();
    let uf = init::normal(parsed.graph.num_left(), dim, scale, &mut rng);
    let if_ = init::normal(parsed.graph.num_right(), dim, scale, &mut rng);

    // 3. Train a 2-level hierarchy and persist it.
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig { input_dim: dim, dim, fanouts: vec![5, 3], ..Default::default() },
        train: SageTrainConfig { epochs: 4, trainable_features: true, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 6.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 11,
    };
    let hierarchy = build_hierarchy(&parsed.graph, &uf, &if_, &cfg);
    let path = std::env::temp_dir().join("custom_data_model.hgh");
    save_hierarchy(&path, &hierarchy).expect("save model");
    println!("trained {} levels, saved to {}", hierarchy.num_levels(), path.display());

    // 4. Reload and inspect: the three planted communities should
    //    dominate the top-level user clusters.
    let reloaded = load_hierarchy(&path).expect("load model");
    let top = reloaded.user_clusters_at(reloaded.num_levels());
    let mut community_by_cluster = vec![[0usize; 3]; top.num_clusters()];
    for u in 0..reloaded.num_users() {
        let original_user = parsed.left_ids[u];
        community_by_cluster[top.cluster_of(u) as usize][(original_user % 3) as usize] += 1;
    }
    println!("\ntop-level user clusters vs planted communities:");
    for (c, counts) in community_by_cluster.iter().enumerate() {
        if counts.iter().sum::<usize>() > 0 {
            println!("  cluster {c}: community counts {counts:?}");
        }
    }
    let _ = std::fs::remove_file(&path);
}
