//! End-to-end CVR prediction pipeline (paper Section IV): generate a
//! dataset, train the hierarchy, train the supervised predictor on
//! hierarchical embeddings + profile/statistic features, and evaluate
//! AUC on the held-out day — comparing against the no-graph baseline.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hignn-examples --bin cvr_pipeline
//! ```

use hignn::prelude::*;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_datasets::{replicate_positives, SampleStats};
use hignn_metrics::auc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn to_pred(samples: &[hignn_datasets::Sample]) -> Vec<hignn::predictor::Sample> {
    samples
        .iter()
        .map(|s| hignn::predictor::Sample::new(s.user, s.item, s.label))
        .collect()
}

fn main() {
    let ds = generate_taobao(&TaobaoConfig::taobao1(0.25));
    println!(
        "dataset: {} users, {} items; train {}, test {}",
        ds.num_users(),
        ds.num_items(),
        SampleStats::of(&ds.train),
        ds.test.len()
    );

    // Replicate positives to the paper's 1:3 ratio.
    let mut rng = StdRng::seed_from_u64(99);
    let train = replicate_positives(&ds.train, 3.0, &mut rng);
    println!("after replicate sampling: {}", SampleStats::of(&train));

    // Hierarchical embeddings.
    println!("\ntraining HiGNN hierarchy ...");
    let cfg = HignnConfig {
        levels: 3,
        sage: BipartiteSageConfig { input_dim: ds.user_features.cols(), ..Default::default() },
        train: SageTrainConfig { epochs: 3, trainable_features: true, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 5.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 1,
    };
    let hierarchy = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
    let zu = hierarchy.hierarchical_users();
    let zi = hierarchy.hierarchical_items();

    // Supervised predictor (Fig. 2): hierarchical user preference +
    // hierarchical item attractiveness + profiles + statistics.
    let features = FeatureBlocks {
        user_hier: Some(&zu),
        item_hier: Some(&zi),
        user_profiles: &ds.user_profiles,
        item_stats: &ds.item_stats,
    };
    println!("training CVR predictor on {} features per sample ...", features.input_dim());
    let predictor_cfg = PredictorConfig { epochs: 3, batch: 512, ..Default::default() };
    let model = CvrPredictor::train(&features, &to_pred(&train), &predictor_cfg);

    let probs = model.predict(&features, &to_pred(&ds.test));
    let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
    let hignn_auc = auc(&probs, &labels);

    // Baseline without graph embeddings (the paper's "level 0").
    let floor = FeatureBlocks { user_hier: None, item_hier: None, ..features };
    let base = CvrPredictor::train(&floor, &to_pred(&train), &predictor_cfg);
    let base_probs = base.predict(&floor, &to_pred(&ds.test));
    let base_auc = auc(&base_probs, &labels);

    println!("\ntest AUC:");
    println!("  no-graph baseline : {base_auc:.4}");
    println!("  HiGNN             : {hignn_auc:.4}  ({:+.2}%)", (hignn_auc / base_auc - 1.0) * 100.0);
}
