//! Topic-driven taxonomy construction (paper Section V): embed queries
//! and item titles with from-scratch word2vec, build the HiGNN taxonomy
//! on the query-item click graph, and browse the resulting topic tree
//! with its automatically selected descriptions.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hignn-examples --bin taxonomy_browser
//! ```

use hignn::prelude::*;
use hignn_datasets::query_item::{generate_query_item, QueryItemConfig};
use hignn_graph::SamplingMode;
use hignn_tensor::Matrix;
use hignn_text::{mean_embedding, train_word2vec, Word2VecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = generate_query_item(&QueryItemConfig::taobao3(0.2));
    println!(
        "query-item graph: {} queries, {} items, {} edges, vocab {} tokens",
        ds.graph.num_left(),
        ds.graph.num_right(),
        ds.graph.num_edges(),
        ds.vocab.len()
    );
    println!("example query : {:?}", ds.query_texts[0]);
    println!("example title : {:?}", ds.item_texts[0]);

    // Shared-space features: mean word2vec vectors (Section V.B).
    println!("\ntraining word2vec (skip-gram, negative sampling) ...");
    let mut rng = StdRng::seed_from_u64(5);
    let emb = train_word2vec(
        &ds.corpus(),
        ds.vocab.counts(),
        &Word2VecConfig { dim: 32, epochs: 3, ..Default::default() },
        &mut rng,
    );
    let feats = |tokens: &[Vec<u32>]| -> Matrix {
        let mut m = Matrix::zeros(tokens.len(), 32);
        for (r, t) in tokens.iter().enumerate() {
            m.set_row(r, &mean_embedding(t, &emb));
        }
        m
    };
    let query_feats = feats(&ds.query_tokens);
    let item_feats = feats(&ds.item_tokens);

    // Taxonomy: shared-weight GraphSAGE + CH-guided cluster counts.
    println!("building taxonomy ...");
    let cfg = TaxonomyConfig {
        hignn: HignnConfig {
            levels: 3,
            sage: BipartiteSageConfig {
                input_dim: 32,
                shared_weights: true,
                sampling: SamplingMode::WeightBiased,
                ..Default::default()
            },
            train: SageTrainConfig { epochs: 4, ..Default::default() },
            cluster_counts: ClusterCounts::ChSelect { divisors: vec![4.0, 6.0, 10.0] },
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed: 11,
        },
        ..Default::default()
    };
    let tax = build_taxonomy(
        &ds.graph,
        &query_feats,
        &item_feats,
        &ds.query_texts,
        &ds.query_tokens,
        &ds.item_tokens,
        &cfg,
    );

    println!("\ntaxonomy ({} levels):", tax.num_levels());
    print!("{}", tax.render(4, 3));

    // Show the representative queries of the biggest fine-grained topic.
    if let Some(topic) = tax.level_topics(1).iter().max_by_key(|t| t.items.len()) {
        println!("\nlargest fine topic #{} ({} items):", topic.id, topic.items.len());
        println!("  description: \"{}\"", topic.description);
        for &q in &topic.description_queries {
            println!("  related query: \"{}\"", ds.query_texts[q as usize]);
        }
    }
}
