//! Serving unseen users: train a HiGNN model once, then fold brand-new
//! users (who did not exist at training time) into the hierarchy from
//! just a handful of observed clicks, and produce top-K recommendations
//! for them — the production loop behind the paper's deployment story.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hignn-examples --bin serve_new_users
//! ```

use hignn::prelude::*;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};

fn main() {
    let ds = generate_taobao(&TaobaoConfig::taobao1(0.15));
    println!(
        "catalogue: {} users, {} items, {} train edges",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges()
    );

    // 1. Train the full model once (hierarchy + per-level GraphSAGE kept
    //    for fold-in).
    println!("training HiGNN model ...");
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig { input_dim: ds.user_features.cols(), ..Default::default() },
        train: SageTrainConfig { epochs: 3, trainable_features: true, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 5.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 21,
    };
    let model = HignnModel::train(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
    println!(
        "hierarchy: {} levels, hierarchical user dim {}",
        model.hierarchy.num_levels(),
        model.hierarchy.user_dim()
    );

    // 2. Train the CVR predictor on the existing users.
    let zu = model.hierarchy.hierarchical_users();
    let zi = model.hierarchy.hierarchical_items();
    let features = FeatureBlocks {
        user_hier: Some(&zu),
        item_hier: Some(&zi),
        user_profiles: &ds.user_profiles,
        item_stats: &ds.item_stats,
    };
    let train: Vec<hignn::predictor::Sample> = ds
        .train
        .iter()
        .map(|s| hignn::predictor::Sample::new(s.user, s.item, s.label))
        .collect();
    let predictor = CvrPredictor::train(
        &features,
        &train,
        &PredictorConfig { epochs: 2, batch: 512, ..Default::default() },
    );

    // 3. A brand-new visitor arrives and clicks three items. Fold them in
    //    (no retraining) and look at where they land.
    let session_clicks = vec![(3u32, 2.0f32), (17, 1.0), (42, 1.0)];
    println!("\nnew visitor clicked items {:?}", session_clicks.iter().map(|c| c.0).collect::<Vec<_>>());
    let folded = model.fold_in_users(std::slice::from_ref(&session_clicks));
    println!("folded-in hierarchical embedding: 1 x {}", folded.cols());

    // 4. Recommend top-5 items for the new visitor by splicing its
    //    embedding into the feature blocks (appended as a virtual user).
    let mut zu_ext = hignn_tensor::Matrix::zeros(zu.rows() + 1, zu.cols());
    for u in 0..zu.rows() {
        zu_ext.set_row(u, zu.row(u));
    }
    zu_ext.set_row(zu.rows(), folded.row(0));
    let mut profiles_ext = hignn_tensor::Matrix::zeros(ds.user_profiles.rows() + 1, ds.user_profiles.cols());
    for u in 0..ds.user_profiles.rows() {
        profiles_ext.set_row(u, ds.user_profiles.row(u));
    }
    let features_ext = FeatureBlocks {
        user_hier: Some(&zu_ext),
        item_hier: Some(&zi),
        user_profiles: &profiles_ext,
        item_stats: &ds.item_stats,
    };
    let virtual_user = zu.rows() as u32;
    let candidates: Vec<u32> = (0..ds.num_items() as u32).collect();
    let top = recommend_top_k(&predictor, &features_ext, virtual_user, &candidates, 5);
    println!("\ntop-5 recommendations for the new visitor:");
    for (rank, (item, p)) in top.iter().enumerate() {
        let leaf = ds.truth.item_leaf_index(*item as usize);
        println!("  {}. item {:>4}  p = {:.3}  (ground-truth topic {leaf})", rank + 1, item, p);
    }
    let clicked_leaf = ds.truth.item_leaf_index(session_clicks[0].0 as usize);
    println!("\n(first clicked item's ground-truth topic: {clicked_leaf})");
}
