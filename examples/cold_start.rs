//! Cold-start recommendation (paper Section IV.C): on a sparse
//! new-arrivals dataset, compare a graph-free ranking against HiGNN's
//! hierarchy-backed ranking in a simulated two-day A/B test — the
//! scenario behind the paper's Table IV.
//!
//! Run with:
//! ```sh
//! cargo run --release -p hignn-examples --bin cold_start
//! ```

use hignn::prelude::*;
use hignn_baselines::Variant;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_simulator::{run_ab, AbConfig, PopularityRanker, ScoreFnRanker};

fn to_pred(samples: &[hignn_datasets::Sample]) -> Vec<hignn::predictor::Sample> {
    samples
        .iter()
        .map(|s| hignn::predictor::Sample::new(s.user, s.item, s.label))
        .collect()
}

fn main() {
    // Sparse cold-start world: many items, few interactions each.
    let ds = generate_taobao(&TaobaoConfig::taobao2(0.25));
    println!(
        "cold-start dataset: {} users, {} items, {} edges (density {:.2e})",
        ds.num_users(),
        ds.num_items(),
        ds.graph.num_edges(),
        ds.graph.density()
    );

    // Train the hierarchy and the CVR predictor on it.
    println!("training HiGNN ...");
    let cfg = HignnConfig {
        levels: 3,
        sage: BipartiteSageConfig { input_dim: ds.user_features.cols(), ..Default::default() },
        train: SageTrainConfig { epochs: 4, trainable_features: true, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 5.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 13,
    };
    let hierarchy = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
    let (uh, ih) = Variant::HiGnn.embeddings(&hierarchy);
    let features = FeatureBlocks {
        user_hier: uh.as_ref(),
        item_hier: ih.as_ref(),
        user_profiles: &ds.user_profiles,
        item_stats: &ds.item_stats,
    };
    let model = CvrPredictor::train(
        &features,
        &to_pred(&ds.train),
        &PredictorConfig { epochs: 3, batch: 512, ..Default::default() },
    );

    // Control: popularity ranking (what a system without personalisation
    // serves to cold items). Treatment: HiGNN scoring.
    let popularity: Vec<f32> = (0..ds.num_items())
        .map(|i| ds.graph.neighbors(hignn_graph::Side::Right, i).1.iter().sum::<f32>())
        .collect();
    let control = PopularityRanker::new(popularity);
    let treatment = ScoreFnRanker::new("HiGNN", |user, candidates| {
        let samples: Vec<hignn::predictor::Sample> = candidates
            .iter()
            .map(|&i| hignn::predictor::Sample::new(user as u32, i, false))
            .collect();
        model.predict(&features, &samples)
    });

    // Candidate pool: the coldest half of the catalogue.
    let mut by_clicks: Vec<(u32, f32)> = (0..ds.num_items() as u32)
        .map(|i| {
            (i, ds.graph.neighbors(hignn_graph::Side::Right, i as usize).1.iter().sum::<f32>())
        })
        .collect();
    by_clicks.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let pool: Vec<u32> = by_clicks[..ds.num_items() / 2].iter().map(|&(i, _)| i).collect();

    println!("running 2-day A/B on {} cold items ...", pool.len());
    let outcome = run_ab(
        &ds.truth,
        &pool,
        &control,
        &treatment,
        &AbConfig { sessions_per_day: 4000, days: 2, seed: 77, ..Default::default() },
    );
    for (d, cmp) in outcome.days.iter().enumerate() {
        println!("\nday {}:\n{cmp}", d + 1);
    }
    println!("\ncombined:\n{}", outcome.total());
}
