//! Seeded proptest strategies shared across the property-based suites
//! (`properties.rs`, `differential_oracle.rs`).
//!
//! Everything here is deterministic given the proptest case RNG: the
//! differential-oracle suite relies on replaying a persisted case index
//! to reproduce the exact graph/matrix an earlier run failed on.
//! Converters between `hignn_tensor::Matrix` and the oracle crate's
//! plain `Vec<Vec<_>>` rows live here too, so tests never hand-roll the
//! (easy to transpose) translation.

// Index loops keep the Matrix↔rows converters visibly order-preserving.
#![allow(clippy::needless_range_loop)]

use hignn_graph::{BipartiteGraph, Side};
use hignn_tensor::Matrix;
use proptest::prelude::*;

/// A raw bipartite graph draw: `(num_left, num_right, edges)`. At least
/// one edge, so `BipartiteGraph::from_edges` and the trainers accept it.
pub type RawGraph = (usize, usize, Vec<(u32, u32, f32)>);

/// Strategy: a small bipartite graph with positive edge weights.
pub fn bipartite_graph(
    max_left: usize,
    max_right: usize,
    max_edges: usize,
) -> impl Strategy<Value = RawGraph> {
    assert!(max_left >= 2 && max_right >= 2 && max_edges >= 2);
    (2usize..max_left, 2usize..max_right).prop_flat_map(move |(nl, nr)| {
        let edges = prop::collection::vec(
            (0..nl as u32, 0..nr as u32, 0.5f32..5.0),
            1..max_edges,
        );
        (Just(nl), Just(nr), edges)
    })
}

/// Strategy: a dense `rows x cols` matrix with entries in
/// `-bound..bound`, dimensions drawn from the given ranges.
pub fn matrix(
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
    bound: f32,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(move |(r, c)| {
        prop::collection::vec(-bound..bound, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: a fixed-shape matrix (for conforming matmul operands).
pub fn matrix_exact(rows: usize, cols: usize, bound: f32) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-bound..bound, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a cluster assignment of `n` vertices into `k` clusters in
/// which every cluster id below `k` actually occurs (vertex `v < k` is
/// pinned to cluster `v`, the rest are free draws).
pub fn surjective_assignment(n: usize, k: usize) -> impl Strategy<Value = Vec<u32>> {
    assert!(k <= n, "need n >= k for a surjective assignment");
    prop::collection::vec(0..k as u32, n).prop_map(move |mut a| {
        for v in 0..k {
            a[v] = v as u32;
        }
        a
    })
}

/// `Matrix` → oracle rows (`f32`).
pub fn to_rows32(m: &Matrix) -> Vec<Vec<f32>> {
    (0..m.rows()).map(|i| m.row(i).to_vec()).collect()
}

/// `Matrix` → oracle rows widened to `f64`.
pub fn to_rows64(m: &Matrix) -> Vec<Vec<f64>> {
    (0..m.rows())
        .map(|i| m.row(i).iter().map(|&v| v as f64).collect())
        .collect()
}

/// Oracle rows → `Matrix` (panics on ragged input).
pub fn from_rows32(rows: &[Vec<f32>]) -> Matrix {
    let cols = rows.first().map_or(0, |r| r.len());
    let mut data = Vec::with_capacity(rows.len() * cols);
    for r in rows {
        assert_eq!(r.len(), cols, "ragged rows");
        data.extend_from_slice(r);
    }
    Matrix::from_vec(rows.len(), cols, data)
}

/// Adjacency lists of one side of a graph (`out[v]` = opposite-side
/// neighbours of `v`), the plain form the oracle crate consumes.
pub fn adjacency(graph: &BipartiteGraph, side: Side) -> Vec<Vec<usize>> {
    (0..graph.num_vertices(side))
        .map(|v| {
            let (nbrs, _) = graph.neighbors(side, v);
            nbrs.iter().map(|&n| n as usize).collect()
        })
        .collect()
}

/// Largest absolute difference between a `Matrix` and `f64` oracle rows.
pub fn max_abs_diff64(m: &Matrix, rows: &[Vec<f64>]) -> f64 {
    assert_eq!(m.rows(), rows.len(), "row count mismatch");
    let mut worst = 0.0f64;
    for i in 0..m.rows() {
        assert_eq!(m.cols(), rows[i].len(), "col count mismatch");
        for j in 0..m.cols() {
            worst = worst.max((m.get(i, j) as f64 - rows[i][j]).abs());
        }
    }
    worst
}
