//! Shared runtime helpers for the integration tests.

use std::sync::Once;

static QUIET: Once = Once::new();

/// Installs (once per process) a panic hook that suppresses the noise
/// of *injected* worker panics — the chaos campaign fires hundreds of
/// them on purpose — while forwarding every other panic to the previous
/// hook so real failures still print normally.
///
/// The hook is never uninstalled: tests run concurrently in one binary,
/// and a filtering hook is safe to leave in place for all of them.
pub fn silence_injected_panics() {
    QUIET.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected worker panic") {
                previous(info);
            }
        }));
    });
}
