//! The chaos campaign: every fault in the matrix either recovers to a
//! bitwise-identical final model or exits with its documented code and
//! a resumable checkpoint.
//!
//! This drives the supervised execution runtime end to end at the
//! library level:
//!
//! * transient I/O faults at the named write sites recover within the
//!   retry budget (bitwise identically, with the exact deterministic
//!   backoff schedule) or exit with the I/O code leaving a resumable
//!   checkpoint — and no test here ever wall-sleeps (the sleeper is
//!   injected everywhere);
//! * watchdog deadline expiry performs a graceful checkpoint-and-abort
//!   with its own exit code (7), and resuming completes byte-identically
//!   to an undeadlined run;
//! * injected worker panics are recovered by deterministic shard
//!   re-execution, leaving the run *successful* and bitwise identical;
//! * checkpoint metas of every supported version (v1/v2/v3) resume to
//!   byte-identical models on current code;
//! * a property-based campaign samples the whole fault matrix (worker
//!   panics x (epoch, shard), I/O faults x (site, budget), stalls,
//!   crashes) across thread counts and asserts the recover-or-documented-
//!   exit property for each. `PROPTEST_CASES` elevates the case count in
//!   the CI `chaos-suite` job.

use hignn::crc32::crc32;
use hignn::io::write_hierarchy;
use hignn::prelude::*;
use hignn_graph::{BipartiteGraph, SamplingMode};
use hignn_integration_tests::support::silence_injected_panics;
use hignn_tensor::{init, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

// ---------------------------------------------------------------------
// Helpers (mirror `crash_recovery.rs` / `determinism.rs`).

/// A small clustered graph + features + config that trains fast but
/// builds two honest levels through the full parallel trainer.
fn small_setup() -> (BipartiteGraph, Matrix, Matrix, HignnConfig) {
    let mut rng = StdRng::seed_from_u64(37);
    let (blocks, per) = (4usize, 10usize);
    let n = blocks * per;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        let b = u as usize / per;
        for _ in 0..5 {
            let i = (b * per + rng.gen_range(0..per)) as u32;
            edges.push((u, i, 1.0));
        }
    }
    let g = BipartiteGraph::from_edges(n, n, edges);
    let uf = init::xavier_uniform(n, 8, &mut rng);
    let if_ = init::xavier_uniform(n, 8, &mut rng);
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig {
            input_dim: 8,
            dim: 8,
            fanouts: vec![4, 3],
            sampling: SamplingMode::Uniform,
            ..Default::default()
        },
        train: SageTrainConfig { epochs: 3, batch_edges: 32, neg_pool: 16, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 4.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 53,
    };
    (g, uf, if_, cfg)
}

fn serialize(h: &Hierarchy) -> Vec<u8> {
    let mut buf = Vec::new();
    write_hierarchy(&mut buf, h).expect("in-memory write cannot fail");
    buf
}

/// The uninjected run's bytes — the ground truth every recovery is
/// compared against. Built once per process.
fn baseline() -> &'static [u8] {
    static BASELINE: OnceLock<Vec<u8>> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let (g, uf, if_, cfg) = small_setup();
        serialize(&build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap())
    })
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hignn_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// Transient I/O at the core write sites: within the retry budget the
// run recovers bitwise identically, and the backoff schedule is exactly
// the deterministic exponential one. Nothing wall-sleeps: the sleeper
// is a recording fake.

#[test]
fn transient_io_within_budget_recovers_bitwise_with_exact_backoff() {
    let (g, uf, if_, cfg) = small_setup();
    let policy = RetryPolicy::default(); // 3 retries
    for site in [WriteSite::SaveLevel, WriteSite::WriteMeta] {
        for failures in 1..=3u32 {
            let dir = scratch(&format!("io_{}_{failures}", site.spec_token()));
            let store = CheckpointStore::create(&dir).unwrap();
            let sleeper = RecordingSleeper::new();
            let h = build_hierarchy_with(
                &g,
                &uf,
                &if_,
                &cfg,
                &BuildOptions {
                    checkpoint: Some(&store),
                    fault: Some(FaultPlan::TransientIo { site, failures }),
                    retry: policy,
                    sleeper: Some(&sleeper),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| {
                panic!("{} with {failures} failures must recover: {e}", site.name())
            });
            assert_eq!(
                serialize(&h).as_slice(),
                baseline(),
                "{} recovered run diverged ({failures} failures)",
                site.name()
            );
            let expected: Vec<Duration> = (0..failures).map(|r| policy.backoff(r)).collect();
            assert_eq!(
                sleeper.slept(),
                expected,
                "{} backoff schedule mismatch ({failures} failures)",
                site.name()
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn exhausted_retry_budget_exits_3_and_checkpoint_resumes_byte_identically() {
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("io_exhaust");
    let store = CheckpointStore::create(&dir).unwrap();
    let sleeper = RecordingSleeper::new();
    // 5 consecutive failures against a budget of 2: the site never
    // heals within the run, so it exits with the documented I/O code.
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::TransientIo { site: WriteSite::SaveLevel, failures: 5 }),
            retry: RetryPolicy::with_max_retries(2),
            sleeper: Some(&sleeper),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 3, "exhausted retries surface as I/O: {err}");
    assert!(err.is_transient(), "the underlying fault stays classified transient");
    assert_eq!(sleeper.slept().len(), 2, "exactly the budget's worth of backoffs");

    // The meta record (levels_done = 0) is durable: the run resumes —
    // retraining level 1 — and matches the uninterrupted bytes.
    let resumed = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
    )
    .unwrap();
    assert_eq!(serialize(&resumed).as_slice(), baseline());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_initial_meta_write_fails_clean_and_a_fresh_run_recovers() {
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("io_meta_exhaust");
    let store = CheckpointStore::create(&dir).unwrap();
    let sleeper = RecordingSleeper::new();
    // The very first durable write (the fresh-run meta record) stays
    // faulted past the budget: nothing was committed, so the documented
    // recovery is a fresh restart, not a resume.
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::TransientIo { site: WriteSite::WriteMeta, failures: 10 }),
            retry: RetryPolicy::with_max_retries(1),
            sleeper: Some(&sleeper),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 3, "{err}");
    assert!(!store.has_meta(), "failed initial meta write must leave no record");
    let fresh = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&store), ..Default::default() },
    )
    .unwrap();
    assert_eq!(serialize(&fresh).as_slice(), baseline());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Watchdog: a (virtually) stalled level trips the deadline at an epoch
// boundary, the build checkpoint-and-aborts with exit code 7, and the
// resumed run completes byte-identically to an undeadlined one. No real
// time passes: the stall advances the watchdog's virtual clock.

#[test]
fn deadline_expiry_checkpoints_aborts_with_exit_7_and_resumes_byte_identically() {
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("deadline");
    let store = CheckpointStore::create(&dir).unwrap();
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::StallEpoch { level: 2, epoch: 0, virtual_ms: 3_600_000 }),
            deadline: Some(Duration::from_secs(60)),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 7, "deadline abort has its own exit code: {err}");
    assert!(err.to_string().contains("--resume"), "the error advertises resume: {err}");
    match err {
        HignnError::DeadlineExceeded { levels_done, elapsed_ms, deadline_ms } => {
            assert_eq!(levels_done, 1, "level 1 was durable before the stall");
            assert_eq!(deadline_ms, 60_000);
            assert!(elapsed_ms >= deadline_ms, "{elapsed_ms} < {deadline_ms}");
        }
        other => panic!("wrong error variant: {other}"),
    }
    assert_eq!(store.read_meta().unwrap().levels_done, 1);

    let resumed = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
    )
    .unwrap();
    assert_eq!(
        serialize(&resumed).as_slice(),
        baseline(),
        "deadline-aborted + resumed run diverged from the undeadlined one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stall_without_deadline_is_inert() {
    // The stall fault models slowness, not failure: with no watchdog
    // armed it must change nothing.
    let (g, uf, if_, cfg) = small_setup();
    let h = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            fault: Some(FaultPlan::StallEpoch { level: 1, epoch: 0, virtual_ms: u64::MAX / 2 }),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(serialize(&h).as_slice(), baseline());
}

// ---------------------------------------------------------------------
// Worker panic during a *resumed* run: recovery composes with resume.

#[test]
fn worker_panic_during_resumed_run_recovers_byte_identically() {
    silence_injected_panics();
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("panic_resume");
    let store = CheckpointStore::create(&dir).unwrap();
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::CrashAfterLevel(1)),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 6);

    // Resume at 4 threads with a one-shot panic injected into level 2's
    // first epoch: the executor re-executes the shard and the run still
    // reproduces the uninterrupted bytes.
    let before = hignn_tensor::parallel::recovered_panics();
    let resumed = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            resume: true,
            fault: Some(FaultPlan::WorkerPanic { level: 2, epoch: 0, shard: 1 }),
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(
        hignn_tensor::parallel::recovered_panics() - before,
        1,
        "the injected panic must actually fire and be recovered"
    );
    assert_eq!(serialize(&resumed).as_slice(), baseline());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Cross-version checkpoint metas: v1 (no threads word), v2 (threads, no
// metrics snapshot), and v3 (current) all resume to byte-identical
// models on current code.

/// Frames a checkpoint meta record by hand: magic, version word, then
/// one length-prefixed CRC-trailed section holding `words` (plus an
/// empty metrics snapshot for v3).
fn frame_meta(version: u32, words: &[u64]) -> Vec<u8> {
    let mut payload = Vec::new();
    for w in words {
        payload.extend_from_slice(&w.to_le_bytes());
    }
    if version >= 3 {
        payload.extend_from_slice(&0u32.to_le_bytes()); // empty snapshot
    }
    let mut buf = Vec::new();
    buf.extend_from_slice(b"HGCK");
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&payload);
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf
}

#[test]
fn checkpoint_meta_of_every_version_resumes_byte_identically() {
    silence_injected_panics();
    let (g, uf, if_, cfg) = small_setup();
    for version in 1u32..=3 {
        let dir = scratch(&format!("metav{version}"));
        let store = CheckpointStore::create(&dir).unwrap();
        let err = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                fault: Some(FaultPlan::CrashAfterLevel(1)),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 6);
        let meta = store.read_meta().unwrap();
        assert_eq!(meta.levels_done, 1);

        // Downgrade the (v3) meta record to the older wire format with
        // identical field values, as a build of that era wrote it.
        let words_v1 = [meta.fingerprint, meta.seed, meta.levels_total, meta.levels_done];
        let bytes = match version {
            1 => frame_meta(1, &words_v1),
            2 => frame_meta(2, &[meta.fingerprint, meta.seed, 2, 1, meta.threads]),
            _ => std::fs::read(dir.join("meta.hgck")).unwrap(),
        };
        std::fs::write(dir.join("meta.hgck"), &bytes).unwrap();
        let reread = store.read_meta().unwrap();
        assert_eq!(reread.levels_done, 1, "v{version} meta readable");

        // Resume — with a worker panic injected into the remaining
        // level for good measure — and compare bytes.
        let resumed = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                resume: true,
                fault: Some(FaultPlan::WorkerPanic { level: 2, epoch: 0, shard: 0 }),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            serialize(&resumed).as_slice(),
            baseline(),
            "resume from v{version} meta diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// The property-based campaign over the whole fault matrix.

/// One sampled chaos scenario.
#[derive(Clone, Copy, Debug)]
struct ChaosCase {
    fault: FaultPlan,
    max_retries: u32,
    threads: usize,
}

/// What the runtime contract says must happen for a given case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expected {
    /// The run succeeds and is bitwise identical to the baseline.
    Recover,
    /// The run exits with this documented code, leaving state from
    /// which recovery (resume, or fresh restart when nothing was
    /// committed) reproduces the baseline bytes.
    Exit(i32),
}

fn expected_outcome(case: &ChaosCase) -> Expected {
    match case.fault {
        FaultPlan::WorkerPanic { .. } => Expected::Recover,
        FaultPlan::TransientIo { failures, .. } => {
            if failures <= case.max_retries {
                Expected::Recover
            } else {
                Expected::Exit(3)
            }
        }
        FaultPlan::StallEpoch { .. } => Expected::Exit(7),
        FaultPlan::CrashAfterLevel(_) | FaultPlan::CrashAfterEpoch { .. } => Expected::Exit(6),
        FaultPlan::TruncateCheckpoint { .. } | FaultPlan::CorruptCheckpoint { .. } => {
            unreachable!("damage faults are covered by crash_recovery.rs")
        }
    }
}

fn chaos_case() -> impl Strategy<Value = ChaosCase> {
    // The vendored proptest's `prop_oneof!` needs same-typed arms, so
    // the matrix is sampled as one flat tuple with a kind discriminant
    // mapped onto the fault variants. Unused coordinates for a given
    // kind are simply ignored.
    ((0..5u8, 1..=2usize, 0..3usize, 0..8usize), (0..5u32, 0..4u32, 1..=4usize)).prop_map(
        |((kind, level, epoch, shard), (failures, max_retries, threads))| {
            let fault = match kind {
                0 => FaultPlan::WorkerPanic { level, epoch, shard },
                1 => FaultPlan::TransientIo {
                    site: if shard % 2 == 0 { WriteSite::SaveLevel } else { WriteSite::WriteMeta },
                    failures,
                },
                2 => FaultPlan::StallEpoch { level, epoch, virtual_ms: 86_400_000 },
                3 => FaultPlan::CrashAfterLevel(level),
                _ => FaultPlan::CrashAfterEpoch { level, epoch },
            };
            ChaosCase { fault, max_retries, threads }
        },
    )
}

proptest! {
    // 14 cases by default; the CI `chaos-suite` job elevates this via
    // the `PROPTEST_CASES` environment variable.
    #![proptest_config(ProptestConfig::with_cases(14))]

    #[test]
    fn every_injected_fault_recovers_or_exits_documented(case in chaos_case()) {
        silence_injected_panics();
        let (g, uf, if_, cfg) = small_setup();
        let dir = scratch(&format!("campaign_{:x}", {
            // Stable per-case tag so concurrent proptest shrink runs
            // never collide on a directory.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in format!("{case:?}").bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_01b3);
            }
            h
        }));
        let store = CheckpointStore::create(&dir).unwrap();
        let sleeper = RecordingSleeper::new();
        let deadline = match case.fault {
            FaultPlan::StallEpoch { .. } => Some(Duration::from_secs(60)),
            _ => None,
        };
        let result = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(case.fault),
            retry: RetryPolicy::with_max_retries(case.max_retries),
            sleeper: Some(&sleeper),
            deadline,
            threads: case.threads,
            ..Default::default()
        });

        match (expected_outcome(&case), result) {
            (Expected::Recover, Ok(h)) => {
                prop_assert_eq!(serialize(&h).as_slice(), baseline(), "recovered run diverged: {:?}", case);
            }
            (Expected::Recover, Err(e)) => {
                panic!("{case:?} should recover, got: {e}");
            }
            (Expected::Exit(code), Err(e)) => {
                prop_assert_eq!(e.exit_code(), code, "{:?}: wrong exit code: {}", case, e);
                // Recovery: resume when something was committed, fresh
                // restart otherwise. Either way: baseline bytes.
                let resume = store.has_meta();
                let recovered = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions {
                    checkpoint: Some(&store),
                    resume,
                    ..Default::default()
                });
                match recovered {
                    Ok(h) => prop_assert_eq!(
                        serialize(&h).as_slice(), baseline(),
                        "recovery after {:?} diverged", case
                    ),
                    Err(e) => panic!("recovery (resume = {resume}) after {case:?} failed: {e}"),
                }
            }
            (Expected::Exit(code), Ok(_)) => {
                panic!("{case:?} should exit {code}, but succeeded");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
