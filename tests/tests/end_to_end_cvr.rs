//! Cross-crate integration: synthetic dataset → HiGNN hierarchy →
//! supervised predictor → AUC on the held-out day.

use hignn::prelude::*;
use hignn_baselines::Variant;
use hignn_datasets::replicate_positives;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_graph::SamplingMode;
use hignn_metrics::auc;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_dataset(seed: u64) -> hignn_datasets::InteractionDataset {
    generate_taobao(&TaobaoConfig {
        num_users: 300,
        num_items: 150,
        train_interactions: 6000,
        test_interactions: 1500,
        branching: vec![3, 3],
        num_categories: 12,
        focus: 0.7,
        base_purchase_logit: -2.5,
        affinity_gain: 4.0,
        quality_gain: 0.4,
        feature_dim: 16,
        max_history: 10,
        seed,
    })
}

fn tiny_hignn(input_dim: usize, seed: u64) -> HignnConfig {
    HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig {
            input_dim,
            dim: 16,
            fanouts: vec![5, 3],
            sampling: SamplingMode::WeightBiased,
            ..Default::default()
        },
        train: SageTrainConfig {
            epochs: 3,
            batch_edges: 128,
            lr: 3e-3,
            trainable_features: true,
            ..Default::default()
        },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 5.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed,
    }
}

fn to_pred(samples: &[hignn_datasets::Sample]) -> Vec<hignn::predictor::Sample> {
    samples
        .iter()
        .map(|s| hignn::predictor::Sample::new(s.user, s.item, s.label))
        .collect()
}

#[test]
fn full_pipeline_beats_chance() {
    let ds = tiny_dataset(41);
    let hierarchy = build_hierarchy(
        &ds.graph,
        &ds.user_features,
        &ds.item_features,
        &tiny_hignn(16, 1),
    );
    assert!(hierarchy.num_levels() >= 1);

    let (uh, ih) = Variant::HiGnn.embeddings(&hierarchy);
    let features = FeatureBlocks {
        user_hier: uh.as_ref(),
        item_hier: ih.as_ref(),
        user_profiles: &ds.user_profiles,
        item_stats: &ds.item_stats,
    };
    let mut rng = StdRng::seed_from_u64(2);
    let train = replicate_positives(&ds.train, 3.0, &mut rng);
    let model = CvrPredictor::train(
        &features,
        &to_pred(&train),
        &PredictorConfig { epochs: 3, batch: 256, hidden: vec![64, 32], ..Default::default() },
    );
    let probs = model.predict(&features, &to_pred(&ds.test));
    let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
    let a = auc(&probs, &labels);
    // Tiny-scale runs are noisy; the bar is "clearly better than chance".
    assert!(a > 0.52, "end-to-end AUC {a}");
    assert!(probs.iter().all(|p| p.is_finite() && (0.0..=1.0).contains(p)));
}

#[test]
fn hierarchy_is_deterministic_given_seed() {
    let ds = tiny_dataset(42);
    let h1 = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &tiny_hignn(16, 9));
    let h2 = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &tiny_hignn(16, 9));
    assert_eq!(h1.num_levels(), h2.num_levels());
    for (a, b) in h1.levels().iter().zip(h2.levels()) {
        assert_eq!(a.user_assignment, b.user_assignment);
        assert!(a.user_embeddings.max_abs_diff(&b.user_embeddings) < 1e-6);
    }
    // A different seed must not produce identical embeddings.
    let h3 = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &tiny_hignn(16, 10));
    assert!(
        h1.levels()[0]
            .user_embeddings
            .max_abs_diff(&h3.levels()[0].user_embeddings)
            > 1e-6
    );
}

#[test]
fn all_variant_predictors_train() {
    let ds = tiny_dataset(43);
    let hierarchy = build_hierarchy(
        &ds.graph,
        &ds.user_features,
        &ds.item_features,
        &tiny_hignn(16, 3),
    );
    let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();
    for variant in [
        Variant::HiGnn,
        Variant::Ge,
        Variant::Cgnn,
        Variant::HupOnly,
        Variant::HiaOnly,
        Variant::Din,
    ] {
        let (uh, ih) = variant.embeddings(&hierarchy);
        let features = FeatureBlocks {
            user_hier: uh.as_ref(),
            item_hier: ih.as_ref(),
            user_profiles: &ds.user_profiles,
            item_stats: &ds.item_stats,
        };
        let model = CvrPredictor::train(
            &features,
            &to_pred(&ds.train),
            &PredictorConfig { epochs: 1, batch: 256, hidden: vec![32], ..Default::default() },
        );
        let probs = model.predict(&features, &to_pred(&ds.test));
        let a = auc(&probs, &labels);
        assert!((0.0..=1.0).contains(&a), "{} AUC {a}", variant.name());
    }
}

#[test]
fn hierarchical_embedding_rows_follow_cluster_chain() {
    let ds = tiny_dataset(44);
    let hierarchy = build_hierarchy(
        &ds.graph,
        &ds.user_features,
        &ds.item_features,
        &tiny_hignn(16, 4),
    );
    let zu = hierarchy.hierarchical_users();
    for u in [0usize, 7, 123] {
        let manual = hierarchy.hierarchical_user(u);
        assert_eq!(zu.row(u), manual.as_slice());
    }
    // Users sharing the same level-1 cluster share the level-2 embedding
    // block.
    let a1 = &hierarchy.levels()[0].user_assignment;
    if hierarchy.num_levels() >= 2 {
        let d = hierarchy.levels()[0].user_embeddings.cols();
        let (u, v) = {
            let mut found = (0, 0);
            'outer: for u in 0..ds.num_users() {
                for v in (u + 1)..ds.num_users() {
                    if a1.cluster_of(u) == a1.cluster_of(v) {
                        found = (u, v);
                        break 'outer;
                    }
                }
            }
            found
        };
        if u != v {
            assert_eq!(&zu.row(u)[d..], &zu.row(v)[d..]);
        }
    }
}
