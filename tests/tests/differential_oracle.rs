//! Differential testing of every optimized hot path against the
//! transparently naive `hignn-oracle` crate.
//!
//! Each property draws randomized inputs (seeded, reproducible from a
//! persisted case index — see tests/README.md) and checks that the
//! optimized implementation agrees with the textbook one:
//!
//! * **bitwise** where the `f32` accumulation order provably matches
//!   (dense matmul in all three transpose layouts, `Mlp::infer`,
//!   K-means assignment / update / full Lloyd runs on single-chunk
//!   inputs, the Eq. 6 cluster feature, Eq. 6 coarsened edge weights);
//! * **within explicit tolerances** where precision or grouping differ
//!   (the Eq. 5 loss and its gradients against `f64` central finite
//!   differences, full bipartite SAGE inference against the `f64`
//!   reference, BM25 against a recounting scorer).
//!
//! The `broken_kernel_detection` module proves the harness has veto
//! power: a 1-ulp corruption of a matmul entry and a sign-flipped
//! gradient both make the comparisons fail.

// Entry-by-entry index loops keep the comparison helpers' iteration
// order obvious, matching the oracle crate's own style.
#![allow(clippy::needless_range_loop)]

use hignn::sage::{BipartiteSage, BipartiteSageConfig};
use hignn_cluster::kmeans::{assign_all, kmeans, mean_by_cluster, KMeansConfig};
use hignn_graph::coarsen::{coarsen, Assignment};
use hignn_graph::{BipartiteGraph, Side};
use hignn_integration_tests::strategies::{
    adjacency, bipartite_graph, matrix_exact, max_abs_diff64, to_rows32, to_rows64,
};
use hignn_oracle as oracle;
use hignn_oracle::eq5::{Dense64, Eq5Param, Eq5Setup};
use hignn_oracle::sage::SageStep;
use hignn_tensor::nn::{Activation, Mlp};
use hignn_tensor::parallel::{ParallelExecutor, ROW_CHUNK};
use hignn_tensor::{Matrix, ParamId, ParamStore, Tape, Var};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---- comparison helpers (Result-returning so the deliberate-break
// ---- tests can assert that corruption is detected) ----------------------

/// Bitwise equality between an optimized matrix and oracle rows.
fn bitwise_eq(actual: &Matrix, expected: &[Vec<f32>], what: &str) -> Result<(), String> {
    if actual.rows() != expected.len() {
        return Err(format!("{what}: row count {} vs {}", actual.rows(), expected.len()));
    }
    for i in 0..actual.rows() {
        if actual.cols() != expected[i].len() {
            return Err(format!("{what}: col count {} vs {}", actual.cols(), expected[i].len()));
        }
        for j in 0..actual.cols() {
            let (a, e) = (actual.get(i, j), expected[i][j]);
            if a.to_bits() != e.to_bits() {
                return Err(format!(
                    "{what}: entry ({i}, {j}) differs: {a:?} ({:#010x}) vs oracle {e:?} ({:#010x})",
                    a.to_bits(),
                    e.to_bits()
                ));
            }
        }
    }
    Ok(())
}

/// Tolerance check of an analytic gradient against oracle finite
/// differences: `|analytic - fd| <= tol * (1 + |fd|)` per entry.
fn grad_close(analytic: &Matrix, fd: &[Vec<f64>], tol: f64, what: &str) -> Result<(), String> {
    if analytic.rows() != fd.len() || analytic.cols() != fd[0].len() {
        return Err(format!(
            "{what}: shape {:?} vs fd {}x{}",
            analytic.shape(),
            fd.len(),
            fd[0].len()
        ));
    }
    for i in 0..analytic.rows() {
        for j in 0..analytic.cols() {
            let a = analytic.get(i, j) as f64;
            let f = fd[i][j];
            let err = (a - f).abs();
            if err > tol * (1.0 + f.abs()) {
                return Err(format!(
                    "{what}: grad ({i}, {j}) analytic {a} vs finite-difference {f} (err {err})"
                ));
            }
        }
    }
    Ok(())
}

// ---- 1. dense matmul: bitwise -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_all_layouts_match_oracle_bitwise(
        (m, k, n) in (1usize..8, 1usize..8, 1usize..8),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        // Draw the operand entries from the seed so the three layouts
        // share conforming shapes without a 6-deep flat_map.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = hignn_tensor::init::xavier_uniform(m, k, &mut rng);
        let b = hignn_tensor::init::xavier_uniform(k, n, &mut rng);
        let oa = to_rows32(&a);
        let ob = to_rows32(&b);
        bitwise_eq(&a.matmul(&b), &oracle::linalg::matmul(&oa, &ob), "matmul").unwrap();

        // A * B^T with B drawn n x k; A^T * B with A drawn k x m.
        let bt = hignn_tensor::init::xavier_uniform(n, k, &mut rng);
        bitwise_eq(&a.matmul_nt(&bt), &oracle::linalg::matmul_nt(&oa, &to_rows32(&bt)), "matmul_nt")
            .unwrap();
        let at = hignn_tensor::init::xavier_uniform(k, m, &mut rng);
        bitwise_eq(&at.matmul_tn(&b), &oracle::linalg::matmul_tn(&to_rows32(&at), &ob), "matmul_tn")
            .unwrap();
    }

    #[test]
    fn matmul_with_zero_entries_matches_oracle_bitwise(
        mask_a in prop::collection::vec(any::<bool>(), 12),
        mask_b in prop::collection::vec(any::<bool>(), 12),
        vals_a in prop::collection::vec(-3.0f32..3.0, 12),
        vals_b in prop::collection::vec(-3.0f32..3.0, 12),
    ) {
        // The optimized kernel skips zero entries of A; prove the skip
        // never changes bits even on zero-riddled inputs.
        let da: Vec<f32> = vals_a.iter().zip(&mask_a).map(|(&v, &z)| if z { 0.0 } else { v }).collect();
        let db: Vec<f32> = vals_b.iter().zip(&mask_b).map(|(&v, &z)| if z { 0.0 } else { v }).collect();
        let a = Matrix::from_vec(3, 4, da);
        let b = Matrix::from_vec(4, 3, db);
        bitwise_eq(&a.matmul(&b), &oracle::linalg::matmul(&to_rows32(&a), &to_rows32(&b)), "zero-skip matmul")
            .unwrap();
    }
}

// ---- 2. K-means: assignment, update feature, full Lloyd — bitwise -------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_assignment_and_inertia_match_oracle_bitwise(
        (n, k, d) in (1usize..60, 1usize..6, 1usize..5),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = hignn_tensor::init::xavier_uniform(n, d, &mut rng);
        let centroids = hignn_tensor::init::xavier_uniform(k, d, &mut rng);
        let (assignment, inertia) = assign_all(&centroids, &data, &ParallelExecutor::single());
        let (o_assignment, o_inertia) = oracle::kmeans::assign(&to_rows32(&data), &to_rows32(&centroids));
        // Per-point assignments are order-independent: bitwise at any n.
        prop_assert_eq!(&assignment, &o_assignment);
        // The inertia sum is chunk-ordered; below ROW_CHUNK rows there is
        // one chunk and the f64 sum order matches exactly.
        prop_assert!(n <= ROW_CHUNK);
        prop_assert_eq!(inertia.to_bits(), o_inertia.to_bits(), "inertia {} vs {}", inertia, o_inertia);
    }

    #[test]
    fn mean_by_cluster_matches_oracle_bitwise(
        (n, k, d) in (1usize..40, 1usize..6, 1usize..5),
        seed in proptest::arbitrary::any::<u64>(),
        assignment_seed in proptest::arbitrary::any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let data = hignn_tensor::init::xavier_uniform(n, d, &mut rng);
        let mut arng = StdRng::seed_from_u64(assignment_seed);
        let assignment: Vec<u32> = (0..n).map(|_| arng.gen_range(0..k as u32)).collect();
        let ours = mean_by_cluster(&data, &assignment, k);
        let theirs = oracle::kmeans::mean_by_cluster(&to_rows32(&data), &assignment, k);
        bitwise_eq(&ours, &theirs, "mean_by_cluster").unwrap();
    }

    #[test]
    fn full_kmeans_matches_naive_lloyd_bitwise(
        (n, k, d) in (2usize..50, 1usize..5, 1usize..4),
        data_seed in proptest::arbitrary::any::<u64>(),
        kmeans_seed in proptest::arbitrary::any::<u64>(),
    ) {
        // Single-chunk regime (n <= ROW_CHUNK): seeding consumes the same
        // RNG stream, every Lloyd iteration accumulates in the same
        // order, so the entire run must be bit-identical.
        prop_assert!(n <= ROW_CHUNK);
        let mut rng = StdRng::seed_from_u64(data_seed);
        let data = hignn_tensor::init::xavier_uniform(n, d, &mut rng);
        let cfg = KMeansConfig::new(k); // max_iters 50, tol 1e-4
        let ours = kmeans(&data, &cfg, &mut StdRng::seed_from_u64(kmeans_seed));
        let (o_centroids, o_assignment, o_inertia, o_iters) = oracle::kmeans::kmeans_full(
            &to_rows32(&data),
            k,
            cfg.max_iters,
            cfg.tol,
            &mut StdRng::seed_from_u64(kmeans_seed),
        );
        prop_assert_eq!(&ours.assignment, &o_assignment);
        prop_assert_eq!(ours.iterations, o_iters);
        bitwise_eq(&ours.centroids, &o_centroids, "kmeans centroids").unwrap();
        prop_assert_eq!(ours.inertia.to_bits(), o_inertia.to_bits(), "inertia {} vs {}", ours.inertia, o_inertia);
    }
}

// ---- 3. Eq. 6 coarsening: bitwise ---------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coarsened_edge_weights_match_oracle_bitwise(
        (nl, nr, edges) in bipartite_graph(10, 10, 30),
        kl in 1usize..5,
        kr in 1usize..5,
        assignment_seed in proptest::arbitrary::any::<u64>(),
    ) {
        use rand::Rng;
        let g = BipartiteGraph::from_edges(nl, nr, edges);
        let mut arng = StdRng::seed_from_u64(assignment_seed);
        let la: Vec<u32> = (0..nl).map(|_| arng.gen_range(0..kl as u32)).collect();
        let ra: Vec<u32> = (0..nr).map(|_| arng.gen_range(0..kr as u32)).collect();
        let c = coarsen(&g, &Assignment::new(la.clone(), kl), &Assignment::new(ra.clone(), kr));
        // The oracle consumes the graph's merged, sorted edge list — the
        // same order the optimized coarsening folds weights in.
        let table = oracle::coarsen::coarsen_weights(g.edges(), &la, &ra, kl, kr);
        for (cl, row) in table.iter().enumerate() {
            for (cr, &w) in row.iter().enumerate() {
                let ours = c.edge_weight(cl, cr);
                if w > 0.0 {
                    prop_assert_eq!(ours.map(f32::to_bits), Some(w.to_bits()),
                        "cluster edge ({}, {}): {:?} vs oracle {}", cl, cr, ours, w);
                } else {
                    prop_assert_eq!(ours, None, "spurious cluster edge ({}, {})", cl, cr);
                }
            }
        }
    }
}

// ---- 4. BM25: f64 reference ---------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bm25_scores_match_recounting_oracle(
        docs in prop::collection::vec(prop::collection::vec(0u32..20, 0..15), 1..8),
        query in prop::collection::vec(0u32..25, 0..10),
    ) {
        let idx = hignn_text::Bm25Index::new(&docs);
        let ours = idx.score_all(&query);
        let theirs = oracle::bm25::score_all(&query, &docs);
        for (d, (a, e)) in ours.iter().zip(&theirs).enumerate() {
            prop_assert!((a - e).abs() <= 1e-12 * (1.0 + e.abs()),
                "doc {}: {} vs oracle {}", d, a, e);
        }
    }
}

// ---- 5. MLP forward (Eq. 7 head): bitwise -------------------------------

/// Reads an [`Mlp`]'s registered parameters back as oracle layers.
fn oracle_layers(mlp: &Mlp, store: &ParamStore) -> Vec<oracle::mlp::DenseLayer> {
    mlp.layers()
        .iter()
        .map(|l| oracle::mlp::DenseLayer {
            w: to_rows32(store.get(l.weight())),
            b: store.get(l.bias()).row(0).to_vec(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mlp_infer_matches_oracle_bitwise(
        (rows, d0, h1, h2) in (1usize..10, 1usize..6, 1usize..8, 1usize..8),
        init_seed in proptest::arbitrary::any::<u64>(),
        x_seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut store = ParamStore::new();
        let mlp = Mlp::new(
            &mut store,
            "head",
            &[d0, h1, h2, 1],
            Activation::LeakyRelu,
            &mut StdRng::seed_from_u64(init_seed),
        );
        let x = hignn_tensor::init::xavier_uniform(rows, d0, &mut StdRng::seed_from_u64(x_seed));
        let ours = mlp.infer(&store, &x);
        let theirs = oracle::mlp::forward(&to_rows32(&x), &oracle_layers(&mlp, &store), 0.01);
        bitwise_eq(&ours, &theirs, "mlp infer").unwrap();
    }

    #[test]
    fn bce_with_logits_matches_oracle_bitwise(
        logits in prop::collection::vec(-6.0f32..6.0, 1..20),
        target_bits in prop::collection::vec(any::<bool>(), 1..20),
    ) {
        let n = logits.len().min(target_bits.len());
        let targets: Vec<f32> = target_bits[..n].iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let l = tape.input(Matrix::column_vector(&logits[..n]));
        let loss = tape.bce_with_logits(l, &targets);
        let ours = tape.scalar(loss);
        let theirs = oracle::mlp::bce_with_logits(
            &logits[..n].iter().map(|&v| vec![v]).collect::<Vec<_>>(),
            &targets,
        );
        prop_assert_eq!(ours.to_bits(), theirs.to_bits(), "bce {} vs {}", ours, theirs);
    }
}

// ---- 6. Full bipartite SAGE inference: f64 reference --------------------

/// Reads one side's registered step parameters back as oracle steps.
fn oracle_steps(store: &ParamStore, name: &str, side: &str, num_steps: usize) -> Vec<SageStep> {
    (1..=num_steps)
        .map(|p| SageStep {
            m: to_rows64(store.get(store.id(&format!("{name}.{side}.m{p}")).unwrap())),
            w: to_rows64(store.get(store.id(&format!("{name}.{side}.w{p}")).unwrap())),
            b: store
                .get(store.id(&format!("{name}.{side}.b{p}")).unwrap())
                .row(0)
                .iter()
                .map(|&v| v as f64)
                .collect(),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn embed_all_matches_f64_oracle(
        (nl, nr, edges) in bipartite_graph(8, 8, 24),
        init_seed in proptest::arbitrary::any::<u64>(),
        feat_seed in proptest::arbitrary::any::<u64>(),
    ) {
        const D: usize = 3;
        let g = BipartiteGraph::from_edges(nl, nr, edges);
        let mut store = ParamStore::new();
        let cfg = BipartiteSageConfig {
            input_dim: D,
            dim: D,
            fanouts: vec![2, 2], // P = 2; fanouts themselves are unused by embed_all
            ..Default::default()
        };
        let sage = BipartiteSage::new(&mut store, "sage", cfg, &mut StdRng::seed_from_u64(init_seed));
        let mut frng = StdRng::seed_from_u64(feat_seed);
        let uf = hignn_tensor::init::xavier_uniform(nl, D, &mut frng);
        let if_ = hignn_tensor::init::xavier_uniform(nr, D, &mut frng);

        let (zu, zi) = sage.embed_all(&store, &g, &uf, &if_);
        let (ozu, ozi) = oracle::sage::embed_all(
            &adjacency(&g, Side::Left),
            &adjacency(&g, Side::Right),
            &to_rows64(&uf),
            &to_rows64(&if_),
            &oracle_steps(&store, "sage", "user", 2),
            &oracle_steps(&store, "sage", "item", 2),
            0.01,
        );
        prop_assert!(max_abs_diff64(&zu, &ozu) < 5e-4, "user side diverged: {}", max_abs_diff64(&zu, &ozu));
        prop_assert!(max_abs_diff64(&zi, &ozi) < 5e-4, "item side diverged: {}", max_abs_diff64(&zi, &ozi));
    }
}

// ---- 7. Eq. 5 loss + gradients vs finite differences --------------------

const EQ5_DIM: usize = 3;
const EQ5_HIDDEN: usize = 4;

/// One randomized Eq. 5 instance: the optimized side (a [`ParamStore`]
/// plus everything needed to build the loss on a [`Tape`]) and the
/// naive side (an [`Eq5Setup`] holding the same numbers in `f64`).
struct Eq5Fixture {
    graph: BipartiteGraph,
    uf: Matrix,
    if_: Matrix,
    store: ParamStore,
    /// Tape-side parameter ids in the same order as `oracle_params`.
    param_ids: Vec<(Eq5Param, ParamId)>,
    positives: Vec<(usize, usize, f32)>,
    neg_user_pairs: Vec<(usize, usize)>,
    neg_item_pairs: Vec<(usize, usize)>,
    gamma: f32,
    q_users: f32,
    q_items: f32,
    oracle: Eq5Setup,
}

/// Raw draw feeding [`build_eq5_fixture`]. All parameter entries come
/// from the proptest case RNG, so a persisted case index reproduces the
/// whole instance.
#[derive(Clone, Debug)]
struct Eq5Draw {
    nl: usize,
    nr: usize,
    edges: Vec<(u32, u32, f32)>,
    param_seed: u64,
    neg_user_pairs: Vec<(usize, usize)>,
    neg_item_pairs: Vec<(usize, usize)>,
    gamma: f32,
    q_users: f32,
    q_items: f32,
}

fn eq5_draw() -> impl Strategy<Value = Eq5Draw> {
    (2usize..5, 2usize..5).prop_flat_map(|(nl, nr)| {
        (
            Just((nl, nr)),
            prop::collection::vec((0..nl as u32, 0..nr as u32, 0.5f32..4.0), 1..10),
            proptest::arbitrary::any::<u64>(),
            (
                prop::collection::vec((0..nl, 0..nr), 1..5),
                prop::collection::vec((0..nl, 0..nr), 1..5),
            ),
            (0.1f32..1.5, 0.5f32..3.0, 0.5f32..3.0),
        )
            .prop_map(|((nl, nr), edges, param_seed, (negu, negi), (gamma, qu, qi))| Eq5Draw {
                nl,
                nr,
                edges,
                param_seed,
                neg_user_pairs: negu,
                neg_item_pairs: negi,
                gamma,
                q_users: qu,
                q_items: qi,
            })
    })
}

fn build_eq5_fixture(draw: Eq5Draw) -> Eq5Fixture {
    let d = EQ5_DIM;
    let h = EQ5_HIDDEN;
    let graph = BipartiteGraph::from_edges(draw.nl, draw.nr, draw.edges);
    let mut rng = StdRng::seed_from_u64(draw.param_seed);
    let uf = hignn_tensor::init::xavier_uniform(draw.nl, d, &mut rng);
    let if_ = hignn_tensor::init::xavier_uniform(draw.nr, d, &mut rng);

    let mut store = ParamStore::new();
    let add = |store: &mut ParamStore, name: &str, rows: usize, cols: usize, rng: &mut StdRng| {
        let m = hignn_tensor::init::xavier_uniform(rows, cols, rng);
        store.add(name.to_string(), m)
    };
    let um = add(&mut store, "eq5.user.m", d, d, &mut rng);
    let uw = add(&mut store, "eq5.user.w", 2 * d, d, &mut rng);
    let ub = add(&mut store, "eq5.user.b", 1, d, &mut rng);
    let im = add(&mut store, "eq5.item.m", d, d, &mut rng);
    let iw = add(&mut store, "eq5.item.w", 2 * d, d, &mut rng);
    let ib = add(&mut store, "eq5.item.b", 1, d, &mut rng);
    let s0w = add(&mut store, "eq5.scorer.l0.w", 2 * d + 1, h, &mut rng);
    let s0b = add(&mut store, "eq5.scorer.l0.b", 1, h, &mut rng);
    let s1w = add(&mut store, "eq5.scorer.l1.w", h, 1, &mut rng);
    let s1b = add(&mut store, "eq5.scorer.l1.b", 1, 1, &mut rng);

    let param_ids = vec![
        (Eq5Param::UserM(0), um),
        (Eq5Param::UserW(0), uw),
        (Eq5Param::UserB(0), ub),
        (Eq5Param::ItemM(0), im),
        (Eq5Param::ItemW(0), iw),
        (Eq5Param::ItemB(0), ib),
        (Eq5Param::ScorerW(0), s0w),
        (Eq5Param::ScorerB(0), s0b),
        (Eq5Param::ScorerW(1), s1w),
        (Eq5Param::ScorerB(1), s1b),
    ];

    let positives: Vec<(usize, usize, f32)> = graph
        .edges()
        .iter()
        .map(|&(u, i, w)| (u as usize, i as usize, w))
        .collect();

    let step64 = |m: ParamId, w: ParamId, b: ParamId| SageStep {
        m: to_rows64(store.get(m)),
        w: to_rows64(store.get(w)),
        b: store.get(b).row(0).iter().map(|&v| v as f64).collect(),
    };
    let oracle = Eq5Setup {
        user_adj: adjacency(&graph, Side::Left),
        item_adj: adjacency(&graph, Side::Right),
        user_feats: to_rows64(&uf),
        item_feats: to_rows64(&if_),
        user_steps: vec![step64(um, uw, ub)],
        item_steps: vec![step64(im, iw, ib)],
        scorer: vec![
            Dense64 {
                w: to_rows64(store.get(s0w)),
                b: store.get(s0b).row(0).iter().map(|&v| v as f64).collect(),
            },
            Dense64 {
                w: to_rows64(store.get(s1w)),
                b: store.get(s1b).row(0).iter().map(|&v| v as f64).collect(),
            },
        ],
        slope: 0.01,
        positives: positives.iter().map(|&(u, i, w)| (u, i, w as f64)).collect(),
        neg_user_pairs: draw.neg_user_pairs.clone(),
        neg_item_pairs: draw.neg_item_pairs.clone(),
        gamma: draw.gamma as f64,
        q_users: draw.q_users as f64,
        q_items: draw.q_items as f64,
    };

    Eq5Fixture {
        graph,
        uf,
        if_,
        store,
        param_ids,
        positives,
        neg_user_pairs: draw.neg_user_pairs,
        neg_item_pairs: draw.neg_item_pairs,
        gamma: draw.gamma,
        q_users: draw.q_users,
        q_items: draw.q_items,
        oracle,
    }
}

/// Builds the deterministic full-neighbourhood Eq. 5 loss on a tape:
/// one SAGE step for both sides (exact neighbourhood means via
/// `segment_mean`, cross-side matmul by `M`, concat, project, leaky
/// ReLU), then the scorer MLP over positive and negative pairs, then
/// `J = pos + Q_u * neg_u + Q_i * neg_i`.
fn tape_eq5_loss(fx: &Eq5Fixture, tape: &mut Tape) -> Var {
    let id_of = |p: Eq5Param| fx.param_ids.iter().find(|(q, _)| *q == p).unwrap().1;
    let flat_l: Vec<usize> =
        fx.graph.flat_neighbors(Side::Left).iter().map(|&v| v as usize).collect();
    let flat_r: Vec<usize> =
        fx.graph.flat_neighbors(Side::Right).iter().map(|&v| v as usize).collect();
    let offs_l = fx.graph.offsets(Side::Left).to_vec();
    let offs_r = fx.graph.offsets(Side::Right).to_vec();

    let hu = tape.input(fx.uf.clone());
    let hi = tape.input(fx.if_.clone());
    let gathered_i = tape.gather_rows(hi, &flat_l);
    let agg_u = tape.segment_mean(gathered_i, &offs_l);
    let gathered_u = tape.gather_rows(hu, &flat_r);
    let agg_i = tape.segment_mean(gathered_u, &offs_r);

    let dense = |tape: &mut Tape, h: Var, agg: Var, m: ParamId, w: ParamId, b: ParamId| {
        let mp = tape.param(m);
        let t = tape.matmul(agg, mp);
        let cat = tape.concat_cols(&[h, t]);
        let wp = tape.param(w);
        let lin = tape.matmul(cat, wp);
        let bp = tape.param(b);
        let lin = tape.add_bias(lin, bp);
        tape.leaky_relu(lin, 0.01)
    };
    let zu = dense(
        tape,
        hu,
        agg_u,
        id_of(Eq5Param::UserM(0)),
        id_of(Eq5Param::UserW(0)),
        id_of(Eq5Param::UserB(0)),
    );
    let zi = dense(
        tape,
        hi,
        agg_i,
        id_of(Eq5Param::ItemM(0)),
        id_of(Eq5Param::ItemW(0)),
        id_of(Eq5Param::ItemB(0)),
    );

    let scorer = |tape: &mut Tape, x: Var| {
        let w0 = tape.param(id_of(Eq5Param::ScorerW(0)));
        let b0 = tape.param(id_of(Eq5Param::ScorerB(0)));
        let h = tape.matmul(x, w0);
        let h = tape.add_bias(h, b0);
        let h = tape.leaky_relu(h, 0.01);
        let w1 = tape.param(id_of(Eq5Param::ScorerW(1)));
        let b1 = tape.param(id_of(Eq5Param::ScorerB(1)));
        let o = tape.matmul(h, w1);
        tape.add_bias(o, b1)
    };
    let pair_term = |tape: &mut Tape,
                     users: &[usize],
                     items: &[usize],
                     weight_col: Matrix,
                     target: f32| {
        let zu_g = tape.gather_rows(zu, users);
        let zi_g = tape.gather_rows(zi, items);
        let w_col = tape.input(weight_col);
        let input = tape.concat_cols(&[zu_g, zi_g, w_col]);
        let logits = scorer(tape, input);
        let targets = vec![target; users.len()];
        tape.bce_with_logits(logits, &targets)
    };

    let pos_users: Vec<usize> = fx.positives.iter().map(|&(u, _, _)| u).collect();
    let pos_items: Vec<usize> = fx.positives.iter().map(|&(_, i, _)| i).collect();
    let pos_weights: Vec<f32> = fx.positives.iter().map(|&(_, _, w)| (1.0 + w).ln()).collect();
    let pos_loss =
        pair_term(tape, &pos_users, &pos_items, Matrix::column_from_vec(pos_weights), 1.0);

    let negu_users: Vec<usize> = fx.neg_user_pairs.iter().map(|&(u, _)| u).collect();
    let negu_items: Vec<usize> = fx.neg_user_pairs.iter().map(|&(_, i)| i).collect();
    let negu_loss = pair_term(
        tape,
        &negu_users,
        &negu_items,
        Matrix::full(negu_users.len(), 1, fx.gamma),
        0.0,
    );
    let negi_users: Vec<usize> = fx.neg_item_pairs.iter().map(|&(u, _)| u).collect();
    let negi_items: Vec<usize> = fx.neg_item_pairs.iter().map(|&(_, i)| i).collect();
    let negi_loss = pair_term(
        tape,
        &negi_users,
        &negi_items,
        Matrix::full(negi_users.len(), 1, fx.gamma),
        0.0,
    );

    let negu_scaled = tape.scale(negu_loss, fx.q_users);
    let negi_scaled = tape.scale(negi_loss, fx.q_items);
    let loss = tape.add(pos_loss, negu_scaled);
    tape.add(loss, negi_scaled)
}

/// Checks one tensor's analytic gradient against oracle finite
/// differences, retrying a failed entry with a 100x smaller step before
/// declaring a mismatch — the retry collapses the rare case where the
/// primary step straddles a leaky-ReLU kink while leaving genuine bugs
/// (wrong sign, wrong formula) failing at every step size.
fn check_eq5_grad(
    setup: &mut Eq5Setup,
    p: Eq5Param,
    analytic: &Matrix,
    tol: f64,
) -> Result<(), String> {
    let coarse = setup.fd_grad(p, 1e-4);
    match grad_close(analytic, &coarse, tol, &format!("{p:?}")) {
        Ok(()) => Ok(()),
        Err(_) => {
            let fine = setup.fd_grad(p, 1e-6);
            grad_close(analytic, &fine, tol, &format!("{p:?} (fine step)"))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn eq5_loss_and_gradients_match_finite_differences(draw in eq5_draw()) {
        let fx = build_eq5_fixture(draw);
        let mut tape = Tape::new(&fx.store);
        let loss = tape_eq5_loss(&fx, &mut tape);
        let loss_val = tape.scalar(loss) as f64;
        let oracle_loss = fx.oracle.loss();
        prop_assert!(
            (loss_val - oracle_loss).abs() <= 1e-3 * (1.0 + oracle_loss.abs()),
            "Eq.5 forward diverged: tape {} vs oracle {}", loss_val, oracle_loss
        );

        let grads = tape.backward(loss);
        let mut setup = fx.oracle.clone();
        for &(p, id) in &fx.param_ids {
            let analytic = grads.get(id).unwrap_or_else(|| panic!("no gradient for {p:?}"));
            check_eq5_grad(&mut setup, p, analytic, 5e-3).unwrap();
        }
    }
}

// ---- 7b. grouped InfoNCE: forward + gradients vs the f64 oracle ---------
//
// The contrastive objective's `info_nce` tape op is checked against the
// naive `f64` reference in `hignn_oracle::infonce`: forward loss within
// tolerance, and both logit gradients against central finite
// differences.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn info_nce_loss_and_gradients_match_finite_differences(
        (n, group) in (1usize..8, 1usize..5),
        temperature in 0.2f64..2.0,
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        use hignn_oracle::infonce::InfoNceSetup;
        use rand::Rng;

        let mut rng = StdRng::seed_from_u64(seed);
        let pos_vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let neg_vals: Vec<f32> = (0..n * group).map(|_| rng.gen_range(-2.0f32..2.0)).collect();

        let mut store = ParamStore::new();
        let pos_id = store.add("nce.pos", Matrix::from_vec(n, 1, pos_vals.clone()));
        let neg_id = store.add("nce.neg", Matrix::from_vec(n * group, 1, neg_vals.clone()));
        let mut tape = Tape::new(&store);
        let p = tape.param(pos_id);
        let m = tape.param(neg_id);
        let loss = tape.info_nce(p, m, group, temperature as f32);
        let loss_val = tape.scalar(loss) as f64;

        let mut oracle = InfoNceSetup {
            pos: pos_vals.iter().map(|&v| v as f64).collect(),
            neg: neg_vals.iter().map(|&v| v as f64).collect(),
            group,
            temperature,
        };
        let oracle_loss = oracle.loss();
        prop_assert!(
            (loss_val - oracle_loss).abs() <= 1e-4 * (1.0 + oracle_loss.abs()),
            "InfoNCE forward diverged: tape {} vs oracle {}", loss_val, oracle_loss
        );

        let grads = tape.backward(loss);
        let gp = grads.get(pos_id).expect("no gradient for positive logits");
        let gn = grads.get(neg_id).expect("no gradient for negative logits");
        let fd_pos: Vec<Vec<f64>> = oracle.fd_grad_pos(1e-5).into_iter().map(|v| vec![v]).collect();
        let fd_neg: Vec<Vec<f64>> = oracle.fd_grad_neg(1e-5).into_iter().map(|v| vec![v]).collect();
        grad_close(gp, &fd_pos, 1e-3, "info_nce positive logits").unwrap();
        grad_close(gn, &fd_neg, 1e-3, "info_nce negative logits").unwrap();
    }
}

// ---- 8. Tiled kernels, fused gather + pool, pooled tape: bitwise --------
//
// The register-tiled matmul kernels process 4x8 (4x4 for `nt`) output
// blocks with scalar remainder edges; these properties push the shapes
// well past one tile so interiors, remainders, and their seams are all
// crossed, and check every output bit against the naive oracle. The
// fused gather + mean-pool and the workspace-pooled tape are compared
// against their unfused / fresh-allocation references, which earlier
// sections already tie to the oracle.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tiled_matmul_tile_crossing_shapes_match_oracle_bitwise(
        (m, k, n) in (1usize..21, 1usize..14, 1usize..27),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = hignn_tensor::init::xavier_uniform(m, k, &mut rng);
        let b = hignn_tensor::init::xavier_uniform(k, n, &mut rng);
        let oa = to_rows32(&a);
        let ob = to_rows32(&b);
        bitwise_eq(&a.matmul(&b), &oracle::linalg::matmul(&oa, &ob), "tiled matmul nn").unwrap();
        let bt = hignn_tensor::init::xavier_uniform(n, k, &mut rng);
        bitwise_eq(
            &a.matmul_nt(&bt),
            &oracle::linalg::matmul_nt(&oa, &to_rows32(&bt)),
            "tiled matmul nt",
        )
        .unwrap();
        let at = hignn_tensor::init::xavier_uniform(k, m, &mut rng);
        bitwise_eq(
            &at.matmul_tn(&b),
            &oracle::linalg::matmul_tn(&to_rows32(&at), &ob),
            "tiled matmul tn",
        )
        .unwrap();
    }

    #[test]
    fn fused_concat_matmul_matches_concat_then_matmul_bitwise(
        (rows, da, db, n) in (1usize..18, 1usize..9, 1usize..9, 1usize..18),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = hignn_tensor::init::xavier_uniform(rows, da, &mut rng);
        let b = hignn_tensor::init::xavier_uniform(rows, db, &mut rng);
        let w = hignn_tensor::init::xavier_uniform(da + db, n, &mut rng);
        let reference = Matrix::concat_cols(&[&a, &b]).matmul(&w);
        let fused = Matrix::concat2_matmul(&a, &b, &w);
        bitwise_eq(&fused, &to_rows32(&reference), "concat2_matmul").unwrap();
    }

    #[test]
    fn fused_gather_mean_pool_matches_composition_bitwise(
        (table_rows, d, groups, group) in (1usize..40, 1usize..9, 0usize..12, 1usize..7),
        seed in proptest::arbitrary::any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let table = hignn_tensor::init::xavier_uniform(table_rows, d, &mut rng);
        let idx: Vec<usize> = (0..groups * group).map(|_| rng.gen_range(0..table_rows)).collect();
        let reference = table.gather_rows(&idx).mean_pool_rows(group);
        let fused = table.gather_mean_pool_rows(&idx, group);
        bitwise_eq(&fused, &to_rows32(&reference), "gather_mean_pool_rows").unwrap();
    }

    #[test]
    fn pooled_tape_step_matches_fresh_tape_bitwise(
        (n, d, h) in (1usize..12, 1usize..6, 1usize..8),
        init_seed in proptest::arbitrary::any::<u64>(),
        x_seed in proptest::arbitrary::any::<u64>(),
        target_bits in prop::collection::vec(any::<bool>(), 12),
    ) {
        let mut rng = StdRng::seed_from_u64(init_seed);
        let mut store = ParamStore::new();
        let w1 = store.add("w1", hignn_tensor::init::xavier_uniform(d, h, &mut rng));
        let b1 = store.add("b1", Matrix::zeros(1, h));
        let w2 = store.add("w2", hignn_tensor::init::xavier_uniform(h, 1, &mut rng));
        let x = hignn_tensor::init::xavier_uniform(n, d, &mut StdRng::seed_from_u64(x_seed));
        let targets: Vec<f32> =
            target_bits[..n].iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();

        let step = |tape: &mut Tape| -> (f32, Vec<Vec<u32>>) {
            let xv = tape.input(x.clone());
            let (w1v, b1v, w2v) = (tape.param(w1), tape.param(b1), tape.param(w2));
            let h1 = tape.matmul(xv, w1v);
            let h1 = tape.add_bias(h1, b1v);
            let h1 = tape.leaky_relu(h1, 0.01);
            let logits = tape.matmul(h1, w2v);
            let loss = tape.bce_with_logits(logits, &targets);
            let loss_val = tape.scalar(loss);
            let grads = tape.backward(loss);
            let bits = [w1, b1, w2]
                .iter()
                .map(|&p| grads.get(p).unwrap().data().iter().map(|v| v.to_bits()).collect())
                .collect();
            (loss_val, bits)
        };

        let mut fresh = Tape::new(&store);
        let (fresh_loss, fresh_bits) = step(&mut fresh);
        let ws = hignn_tensor::Workspace::new();
        // Two pooled runs: the first leases fresh buffers, the second
        // reuses recycled (dirtied) ones — both must match bitwise.
        for round in 0..2 {
            let mut pooled = Tape::with_workspace(&store, &ws);
            let (loss, bits) = step(&mut pooled);
            pooled.recycle();
            prop_assert_eq!(loss.to_bits(), fresh_loss.to_bits(),
                "pooled round {} loss {} vs fresh {}", round, loss, fresh_loss);
            prop_assert_eq!(&bits, &fresh_bits, "pooled round {} gradients diverged", round);
        }
    }
}

// ---- 9. FastMath tier: toleranced against an f64 oracle ------------------
//
// The FastMath tier (DESIGN.md §14) may contract multiply-adds with FMA
// and reorder accumulation across vector lanes, so it is checked against
// an `f64` reference within explicit per-kernel tolerances rather than
// bitwise. The value-identical FastMath kernels (gather + mean-pool,
// leaky ReLU) are still held to exact bits. Shapes cross the AVX2
// microkernel's 4x16 tile in both directions so interiors, vector
// remainders, and scalar tails are all exercised. The module's own
// deliberate-break test proves a corrupted fast kernel fails the check.

mod fastmath {
    use super::*;
    use hignn_tensor::{simd, MathMode};

    /// Per-entry tolerance check against f64 oracle rows:
    /// `|fast - oracle| <= tol * (1 + |oracle|)`.
    pub(super) fn close64(
        actual: &Matrix,
        expected: &[Vec<f64>],
        tol: f64,
        what: &str,
    ) -> Result<(), String> {
        if actual.rows() != expected.len() || actual.cols() != expected[0].len() {
            return Err(format!(
                "{what}: shape {:?} vs oracle {}x{}",
                actual.shape(),
                expected.len(),
                expected[0].len()
            ));
        }
        for i in 0..actual.rows() {
            for j in 0..actual.cols() {
                let (a, e) = (actual.get(i, j) as f64, expected[i][j]);
                if (a - e).abs() > tol * (1.0 + e.abs()) {
                    return Err(format!("{what}: entry ({i}, {j}) {a} vs oracle {e}"));
                }
            }
        }
        Ok(())
    }

    /// Naive f64 matmul of two f32 matrices.
    pub(super) fn mm_f64(a: &Matrix, b: &Matrix) -> Vec<Vec<f64>> {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut out = vec![vec![0f64; n]; m];
        for i in 0..m {
            for p in 0..k {
                let av = a.get(i, p) as f64;
                for j in 0..n {
                    out[i][j] += av * b.get(p, j) as f64;
                }
            }
        }
        out
    }

    /// Matmul FastMath tolerance: `tol * (1 + |oracle|)` with
    /// `tol = 1e-5 * sqrt(k)` — FMA and lane reordering perturb each
    /// contraction by O(eps) per term, growing with the contraction
    /// length like a random walk.
    fn mm_tol(k: usize) -> f64 {
        1e-5 * (k as f64).sqrt().max(1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn fast_matmul_all_layouts_match_f64_oracle(
            (m, k, n) in (1usize..40, 1usize..20, 1usize..40),
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = hignn_tensor::init::xavier_uniform(m, k, &mut rng);
            let b = hignn_tensor::init::xavier_uniform(k, n, &mut rng);
            let oracle = mm_f64(&a, &b);
            close64(&a.matmul_mode(&b, MathMode::FastMath), &oracle, mm_tol(k), "fast nn").unwrap();

            let bt = Matrix::from_fn(n, k, |i, j| b.get(j, i));
            let mut out = Matrix::zeros(m, n);
            a.matmul_nt_into_mode(&bt, &mut out, MathMode::FastMath);
            close64(&out, &oracle, mm_tol(k), "fast nt").unwrap();

            let at = Matrix::from_fn(k, m, |i, j| a.get(j, i));
            at.matmul_tn_into_mode(&b, &mut out, MathMode::FastMath);
            close64(&out, &oracle, mm_tol(k), "fast tn").unwrap();
        }

        #[test]
        fn fast_concat2_matmul_matches_f64_oracle(
            (rows, da, db, n) in (1usize..24, 1usize..10, 1usize..10, 1usize..36),
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = hignn_tensor::init::xavier_uniform(rows, da, &mut rng);
            let b = hignn_tensor::init::xavier_uniform(rows, db, &mut rng);
            let w = hignn_tensor::init::xavier_uniform(da + db, n, &mut rng);
            let cat = Matrix::concat_cols(&[&a, &b]);
            let oracle = mm_f64(&cat, &w);
            let fused = Matrix::concat2_matmul_mode(&a, &b, &w, MathMode::FastMath);
            close64(&fused, &oracle, mm_tol(da + db), "fast concat2").unwrap();
        }

        #[test]
        fn fast_gather_mean_pool_is_value_identical(
            (table_rows, d, groups, group) in (1usize..40, 1usize..40, 1usize..12, 1usize..7),
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            use rand::Rng;
            let mut rng = StdRng::seed_from_u64(seed);
            let table = hignn_tensor::init::xavier_uniform(table_rows, d, &mut rng);
            let idx: Vec<usize> =
                (0..groups * group).map(|_| rng.gen_range(0..table_rows)).collect();
            let reference = table.gather_mean_pool_rows(&idx, group);
            let mut fast = Matrix::zeros(groups, d);
            table.gather_mean_pool_rows_into_mode(&idx, group, &mut fast, MathMode::FastMath);
            bitwise_eq(&fast, &to_rows32(&reference), "fast gather_mean_pool").unwrap();
        }

        #[test]
        fn fast_elementwise_kernels_match_oracles(
            vals in prop::collection::vec(-3.0f32..3.0, 1..70),
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            use rand::Rng;
            // Leaky ReLU forward/backward: value-identical tier rule.
            let mut fwd = vals.clone();
            simd::leaky_relu_fast(&mut fwd, 0.01);
            for (i, (&f, &x)) in fwd.iter().zip(&vals).enumerate() {
                let want = if x > 0.0 { x } else { 0.01 * x };
                prop_assert_eq!(f.to_bits(), want.to_bits(), "leaky_relu[{}]: {} vs {}", i, f, want);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let gin: Vec<f32> = vals.iter().map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let mut bwd = gin.clone();
            simd::leaky_relu_bwd_fast(&mut bwd, &vals, 0.01);
            for (i, ((&g, &g0), &x)) in bwd.iter().zip(&gin).zip(&vals).enumerate() {
                let want = if x > 0.0 { g0 } else { 0.01 * g0 };
                prop_assert_eq!(g.to_bits(), want.to_bits(), "leaky_relu_bwd[{}]", i);
            }

            // Fused Adam step vs the f64 oracle of the same update.
            let n = vals.len();
            let mut p: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let mut m: Vec<f32> = (0..n).map(|_| rng.gen_range(-0.1f32..0.1)).collect();
            let mut v: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0f32..0.01)).collect();
            let (lr, b1, b2, eps) = (1e-3f32, 0.9f32, 0.999f32, 1e-8f32);
            let (bc1, bc2) = (0.271f32, 0.0297f32);
            let oracle_p: Vec<f64> = (0..n)
                .map(|i| {
                    let gi = vals[i] as f64;
                    let mi = 0.9 * m[i] as f64 + 0.1 * gi;
                    let vi = 0.999 * v[i] as f64 + 0.001 * gi * gi;
                    p[i] as f64 - 1e-3 * (mi / bc1 as f64) / ((vi / bc2 as f64).sqrt() + 1e-8)
                })
                .collect();
            simd::adam_step_fast(&mut p, &mut m, &mut v, &vals, lr, b1, b2, eps, bc1, bc2);
            for i in 0..n {
                let err = (p[i] as f64 - oracle_p[i]).abs();
                prop_assert!(err <= 1e-5 * (1.0 + oracle_p[i].abs()),
                    "adam_step[{}]: {} vs oracle {}", i, p[i], oracle_p[i]);
            }
        }

        #[test]
        fn fast_kernels_are_self_deterministic(
            (m, k, n) in (1usize..24, 1usize..20, 1usize..24),
            seed in proptest::arbitrary::any::<u64>(),
        ) {
            // FastMath reorders accumulation relative to Bitwise, but its
            // lane structure is fixed: reruns must reproduce exact bits.
            let mut rng = StdRng::seed_from_u64(seed);
            let a = hignn_tensor::init::xavier_uniform(m, k, &mut rng);
            let b = hignn_tensor::init::xavier_uniform(k, n, &mut rng);
            let once = a.matmul_mode(&b, MathMode::FastMath);
            let twice = a.matmul_mode(&b, MathMode::FastMath);
            prop_assert_eq!(
                once.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                twice.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}

// ---- deliberate-break detection -----------------------------------------

mod broken_kernel_detection {
    use super::*;

    fn fixed_eq5_fixture() -> Eq5Fixture {
        build_eq5_fixture(Eq5Draw {
            nl: 3,
            nr: 3,
            edges: vec![(0, 0, 1.5), (0, 1, 2.0), (1, 0, 1.0), (2, 2, 3.0)],
            param_seed: 7,
            neg_user_pairs: vec![(1, 2), (2, 0)],
            neg_item_pairs: vec![(0, 2), (2, 1)],
            gamma: 0.8,
            q_users: 2.0,
            q_items: 1.5,
        })
    }

    #[test]
    fn sign_flipped_eq5_gradient_is_rejected() {
        let fx = fixed_eq5_fixture();
        let mut tape = Tape::new(&fx.store);
        let loss = tape_eq5_loss(&fx, &mut tape);
        let grads = tape.backward(loss);
        let id = fx.param_ids.iter().find(|(p, _)| *p == Eq5Param::UserM(0)).unwrap().1;
        let analytic = grads.get(id).expect("gradient for M_u");
        let mut setup = fx.oracle.clone();

        // Sanity: the untouched gradient passes and is non-trivial.
        check_eq5_grad(&mut setup, Eq5Param::UserM(0), analytic, 5e-3).unwrap();
        let fd = setup.fd_grad(Eq5Param::UserM(0), 1e-4);
        let fd_max = fd.iter().flatten().fold(0.0f64, |a, &v| a.max(v.abs()));
        assert!(fd_max > 1e-4, "instance too degenerate to detect a sign flip ({fd_max})");

        // The break: the Eq. 5 gradient with its sign flipped (the
        // classic backward-pass bug) must be rejected.
        let flipped = analytic.map(|v| -v);
        let verdict = check_eq5_grad(&mut setup, Eq5Param::UserM(0), &flipped, 5e-3);
        assert!(verdict.is_err(), "sign-flipped gradient was not detected");
    }

    #[test]
    fn one_ulp_matmul_corruption_is_rejected() {
        let a = Matrix::from_vec(2, 3, vec![0.7, -1.2, 0.4, 2.0, 0.3, -0.9]);
        let b = Matrix::from_vec(3, 2, vec![1.1, 0.2, -0.6, 0.8, 0.5, -1.4]);
        let product = a.matmul(&b);
        let expected = oracle::linalg::matmul(&to_rows32(&a), &to_rows32(&b));
        bitwise_eq(&product, &expected, "matmul").unwrap();

        // Corrupt a single output entry by one ulp: still "equal" under
        // any epsilon comparison, but the bitwise oracle must catch it.
        let mut corrupted = product;
        let v = corrupted.get(1, 1);
        corrupted.set(1, 1, f32::from_bits(v.to_bits() ^ 1));
        assert!(
            bitwise_eq(&corrupted, &expected, "matmul").is_err(),
            "1-ulp corruption was not detected"
        );
    }

    #[test]
    fn corrupted_fast_kernel_is_rejected() {
        use hignn_tensor::MathMode;

        // A healthy FastMath product passes the f64-oracle tolerance...
        let mut rng = StdRng::seed_from_u64(42);
        let a = hignn_tensor::init::xavier_uniform(9, 13, &mut rng);
        let b = hignn_tensor::init::xavier_uniform(13, 17, &mut rng);
        let oracle = fastmath::mm_f64(&a, &b);
        let fast = a.matmul_mode(&b, MathMode::FastMath);
        fastmath::close64(&fast, &oracle, 1e-4, "fast matmul").unwrap();

        // ...but a kernel bug perturbing one entry by 1e-2 (far outside
        // any FMA-reordering effect, yet invisible to eyeballing) must
        // fail it: the tolerance has veto power, it is not a rubber
        // stamp.
        let mut broken = fast;
        let v = broken.get(4, 11);
        broken.set(4, 11, v + 1e-2);
        assert!(
            fastmath::close64(&broken, &oracle, 1e-4, "fast matmul").is_err(),
            "1e-2 corruption of a FastMath kernel output was not detected"
        );
    }

    #[test]
    fn wrong_kmeans_tie_break_is_rejected() {
        // Duplicate centroids force a tie; an implementation that broke
        // the first-minimum-wins rule would disagree with the oracle.
        let data = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]);
        let centroids = Matrix::from_vec(2, 1, vec![2.0, 2.0]);
        let (ours, _) = assign_all(&centroids, &data, &ParallelExecutor::single());
        let (theirs, _) = oracle::kmeans::assign(&to_rows32(&data), &to_rows32(&centroids));
        assert_eq!(ours, theirs);
        assert!(ours.iter().all(|&c| c == 0), "tie must go to the first centroid");
        let last_wins: Vec<u32> = ours.iter().map(|_| 1).collect();
        assert_ne!(last_wins, theirs, "oracle cannot distinguish tie-break rules");
    }
}

// ---- strategies smoke test (the shared module itself) --------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn matrix_roundtrips_through_oracle_rows(m in matrix_exact(4, 3, 2.0)) {
        let rows = to_rows32(&m);
        let back = hignn_integration_tests::strategies::from_rows32(&rows);
        prop_assert_eq!(m.data(), back.data());
    }
}
