//! Crash-safety integration tests: checkpoint/resume determinism,
//! fault injection, corruption detection, and format fuzzing.
//!
//! These drive the whole recovery story at the library level (the CLI
//! tests in `hignn-cli` cover the same story end to end through the
//! binary's flags and exit codes):
//!
//! * a build killed after any level — or mid-level — and resumed from
//!   its checkpoint produces a hierarchy **byte-identical** to an
//!   uninterrupted run;
//! * every injected checkpoint corruption or truncation is detected as
//!   a checksum/format error (exit class 4), never a panic and never a
//!   silently wrong hierarchy;
//! * the `HGHI` v2 codec round-trips arbitrary synthetic hierarchies
//!   (property-tested) and rejects truncation at every 64-byte boundary.

use hignn::io::{read_hierarchy, write_hierarchy, write_hierarchy_v1};
use hignn::prelude::*;
use hignn_graph::{Assignment, BipartiteGraph, SamplingMode};
use hignn_tensor::{init, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

// ---------------------------------------------------------------------
// Helpers.

/// A small clustered graph + features + config that trains in well
/// under a second but still builds two honest levels.
fn small_setup() -> (BipartiteGraph, Matrix, Matrix, HignnConfig) {
    let mut rng = StdRng::seed_from_u64(41);
    let (blocks, per) = (4usize, 10usize);
    let n = blocks * per;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        let b = u as usize / per;
        for _ in 0..5 {
            let i = (b * per + rng.gen_range(0..per)) as u32;
            edges.push((u, i, 1.0));
        }
    }
    let g = BipartiteGraph::from_edges(n, n, edges);
    let uf = init::xavier_uniform(n, 8, &mut rng);
    let if_ = init::xavier_uniform(n, 8, &mut rng);
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig {
            input_dim: 8,
            dim: 8,
            fanouts: vec![4, 3],
            sampling: SamplingMode::Uniform,
            ..Default::default()
        },
        train: SageTrainConfig { epochs: 3, batch_edges: 32, neg_pool: 16, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 4.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 17,
    };
    (g, uf, if_, cfg)
}

fn serialize(h: &Hierarchy) -> Vec<u8> {
    let mut buf = Vec::new();
    write_hierarchy(&mut buf, h).expect("in-memory write cannot fail");
    buf
}

/// A unique scratch directory per test (parallel test binaries share
/// the system temp dir).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hignn_cr_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// Resume-after-kill reproduces the uninterrupted run byte-for-byte.

#[test]
fn resume_after_crash_at_each_level_is_byte_identical() {
    let (g, uf, if_, cfg) = small_setup();
    let clean = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap();
    let clean_bytes = serialize(&clean);

    for crash_level in 1..=2usize {
        let dir = scratch(&format!("lvl{crash_level}"));
        let store = CheckpointStore::create(&dir).unwrap();
        let err = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                fault: Some(FaultPlan::CrashAfterLevel(crash_level)),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "expected injected fault, got: {err}");

        let resumed = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(
            serialize(&resumed),
            clean_bytes,
            "resume after crash at level {crash_level} diverged from the uninterrupted run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_after_mid_level_crash_is_byte_identical() {
    let (g, uf, if_, cfg) = small_setup();
    let clean = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap();

    // Die inside level 2's training loop: level 1 is durable, level 2 is
    // lost entirely and must be retrained from scratch on resume.
    let dir = scratch("midlvl");
    let store = CheckpointStore::create(&dir).unwrap();
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::CrashAfterEpoch { level: 2, epoch: 0 }),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 6, "expected injected fault, got: {err}");

    let resumed = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
    )
    .unwrap();
    assert_eq!(serialize(&resumed), serialize(&clean));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_different_inputs() {
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("fingerprint");
    let store = CheckpointStore::create(&dir).unwrap();
    let _ = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::CrashAfterLevel(1)),
            ..Default::default()
        },
    )
    .unwrap_err();

    // Same graph, different seed: a different run. Resuming must be
    // refused (config error), not silently splice two runs together.
    let mut other = cfg.clone();
    other.seed = cfg.seed + 1;
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &other,
        &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 2, "expected config refusal, got: {err}");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Injected damage is always detected — never a panic, never a silently
// wrong result.

#[test]
fn every_seeded_corruption_is_detected_on_resume() {
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("corrupt");
    for seed in 0..16u64 {
        let store = CheckpointStore::create(&dir).unwrap();
        let err = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                fault: Some(FaultPlan::seeded_corruption(1, seed)),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "seed {seed}: expected injected fault, got: {err}");

        let resume = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
        );
        let err = resume.expect_err(&format!("seed {seed}: corruption went undetected"));
        assert_eq!(err.exit_code(), 4, "seed {seed}: expected corruption, got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn every_truncation_is_detected_on_resume() {
    let (g, uf, if_, cfg) = small_setup();
    let dir = scratch("trunc");
    // 0 = empty file; small values cut inside magic/version/length;
    // larger ones cut inside the CRC-protected payload.
    for keep_bytes in [0u64, 3, 4, 8, 15, 16, 64, 500] {
        let store = CheckpointStore::create(&dir).unwrap();
        let err = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                fault: Some(FaultPlan::TruncateCheckpoint { level: 1, keep_bytes }),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "keep {keep_bytes}: expected injected fault, got: {err}");

        let resume = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
        );
        let err = resume.expect_err(&format!("keep {keep_bytes}: truncation went undetected"));
        assert_eq!(err.exit_code(), 4, "keep {keep_bytes}: expected corruption, got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Numeric-health guard: poisoned inputs surface as structured
// divergence errors, under both policies.

#[test]
fn nan_features_trigger_divergence_abort() {
    let (g, _uf, if_, cfg) = small_setup();
    let uf = Matrix::from_vec(g.num_left(), 8, vec![f32::NAN; g.num_left() * 8]);
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { guard: GuardPolicy::Abort, ..Default::default() },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 5, "expected divergence, got: {err}");
    assert!(err.to_string().contains("level 1"), "{err}");
}

#[test]
fn rollback_retries_then_gives_up_on_persistent_nan() {
    // NaN inputs diverge on every retry, so Rollback must eventually
    // give up with the same structured error instead of looping.
    let (g, _uf, if_, cfg) = small_setup();
    let uf = Matrix::from_vec(g.num_left(), 8, vec![f32::NAN; g.num_left() * 8]);
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { guard: GuardPolicy::Rollback { max_retries: 2 }, ..Default::default() },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 5, "expected divergence after retries, got: {err}");
}

// ---------------------------------------------------------------------
// Codec fuzzing: truncation at every 64-byte boundary and single-byte
// corruption must yield clean errors.

#[test]
fn truncation_at_every_64_byte_boundary_errors_cleanly() {
    let (g, uf, if_, cfg) = small_setup();
    let h = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap();

    let v2 = serialize(&h);
    let mut v1 = Vec::new();
    write_hierarchy_v1(&mut v1, &h).unwrap();
    assert!(read_hierarchy(&mut v2.as_slice()).is_ok());
    assert!(read_hierarchy(&mut v1.as_slice()).is_ok());

    for bytes in [&v2, &v1] {
        for cut in (0..bytes.len()).step_by(64).chain([bytes.len() - 1]) {
            let truncated = &bytes[..cut];
            assert!(
                read_hierarchy(&mut &truncated[..]).is_err(),
                "file cut at byte {cut} of {} parsed successfully",
                bytes.len()
            );
        }
    }
}

#[test]
fn single_byte_corruption_of_v2_file_errors_cleanly() {
    let (g, uf, if_, cfg) = small_setup();
    let h = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap();
    let clean = serialize(&h);
    // Different stride and mask than the unit test in `core::io`, for
    // wider combined coverage of byte positions.
    for pos in (0..clean.len()).step_by(13) {
        let mut evil = clean.clone();
        evil[pos] ^= 0x80;
        assert!(
            read_hierarchy(&mut evil.as_slice()).is_err(),
            "flip at byte {pos} of {} went undetected",
            clean.len()
        );
    }
}

// ---------------------------------------------------------------------
// Property tests: the codec round-trips arbitrary well-formed
// hierarchies, not just trained ones.

/// Builds a structurally valid but otherwise arbitrary hierarchy from a
/// seed: random sizes, random embeddings, random (chain-consistent)
/// assignments, random coarsened graphs, random loss history.
fn synth_hierarchy(seed: u64) -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(seed);
    let num_users = rng.gen_range(4usize..20);
    let num_items = rng.gen_range(4usize..20);
    let dim = rng.gen_range(2usize..6);
    let num_levels = rng.gen_range(1usize..4);

    let mut levels = Vec::new();
    let (mut nu, mut ni) = (num_users, num_items);
    for _ in 0..num_levels {
        let ku = rng.gen_range(2..=nu.clamp(2, 6));
        let ki = rng.gen_range(2..=ni.clamp(2, 6));
        // Guarantee every cluster id stays in range; coverage of all
        // clusters is not required by the format.
        let ua: Vec<u32> = (0..nu).map(|_| rng.gen_range(0..ku as u32)).collect();
        let ia: Vec<u32> = (0..ni).map(|_| rng.gen_range(0..ki as u32)).collect();
        let num_edges = rng.gen_range(0usize..12);
        let edges: Vec<(u32, u32, f32)> = (0..num_edges)
            .map(|_| {
                (
                    rng.gen_range(0..ku as u32),
                    rng.gen_range(0..ki as u32),
                    rng.gen_range(0.5f32..4.0),
                )
            })
            .collect();
        let num_losses = rng.gen_range(0usize..4);
        levels.push(Level {
            user_embeddings: init::xavier_uniform(nu, dim, &mut rng),
            item_embeddings: init::xavier_uniform(ni, dim, &mut rng),
            user_assignment: Assignment::new(ua, ku),
            item_assignment: Assignment::new(ia, ki),
            coarsened: BipartiteGraph::from_edges(ku, ki, edges),
            epoch_losses: (0..num_losses).map(|_| rng.gen_range(0.0f32..2.0)).collect(),
        });
        nu = ku;
        ni = ki;
    }
    Hierarchy::from_parts(levels, num_users, num_items).expect("synthetic hierarchy is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_hierarchy_v2_roundtrip(seed in 0u64..100_000) {
        let h = synth_hierarchy(seed);
        let bytes = serialize(&h);
        let back = read_hierarchy(&mut bytes.as_slice()).unwrap();
        // Re-serialisation being byte-identical covers every field of
        // every level in one comparison.
        prop_assert_eq!(serialize(&back), bytes);
        prop_assert_eq!(back.num_users(), h.num_users());
        prop_assert_eq!(back.num_items(), h.num_items());
        prop_assert_eq!(back.num_levels(), h.num_levels());
    }

    #[test]
    fn synthetic_hierarchy_v1_reader_matches_v2(seed in 0u64..100_000) {
        let h = synth_hierarchy(seed);
        let mut v1 = Vec::new();
        write_hierarchy_v1(&mut v1, &h).unwrap();
        let back = read_hierarchy(&mut v1.as_slice()).unwrap();
        // The legacy reader reconstructs the same hierarchy: writing it
        // back in v2 matches the direct v2 encoding.
        prop_assert_eq!(serialize(&back), serialize(&h));
    }

    #[test]
    fn synthetic_hierarchy_truncation_always_errors(
        seed in 0u64..100_000,
        frac in 0.0f64..1.0,
    ) {
        let h = synth_hierarchy(seed);
        let bytes = serialize(&h);
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(read_hierarchy(&mut &bytes[..cut]).is_err());
    }
}
