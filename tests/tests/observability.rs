//! End-to-end observability integration tests (DESIGN.md §10).
//!
//! * Counter continuation: a run that crashes mid-hierarchy and resumes
//!   from its checkpoint ends with exactly the counter totals of an
//!   uninterrupted run — the metrics snapshot rides inside checkpoint
//!   metadata and is restored on resume.
//! * Structured logging: a logged build emits heartbeat and per-level
//!   events; in JSON mode every line is a well-formed object.
//!
//! The obs registry and toggles are process-global, so every test here
//! serialises on one mutex (this file is its own test binary, so no
//! other workspace test shares the process).

use hignn::checkpoint::{CheckpointStore, FaultPlan};
use hignn::prelude::*;
use hignn_graph::{BipartiteGraph, SamplingMode};
use hignn_obs::{LogFormat, MetricsSnapshot};
use hignn_tensor::{init, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn small_setup() -> (BipartiteGraph, Matrix, Matrix, HignnConfig) {
    let mut rng = StdRng::seed_from_u64(31);
    let (blocks, per) = (4usize, 10usize);
    let n = blocks * per;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        let b = u as usize / per;
        for _ in 0..5 {
            let i = (b * per + rng.gen_range(0..per)) as u32;
            edges.push((u, i, 1.0));
        }
    }
    let g = BipartiteGraph::from_edges(n, n, edges);
    let uf = init::xavier_uniform(n, 8, &mut rng);
    let if_ = init::xavier_uniform(n, 8, &mut rng);
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig {
            input_dim: 8,
            dim: 8,
            fanouts: vec![4, 3],
            sampling: SamplingMode::Uniform,
            ..Default::default()
        },
        train: SageTrainConfig { epochs: 2, batch_edges: 32, neg_pool: 16, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 4.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 37,
    };
    (g, uf, if_, cfg)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hignn_obs_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Current global counters as a snapshot (sorted, comparable).
fn counters_now() -> MetricsSnapshot {
    hignn_obs::global().snapshot()
}

#[test]
fn resumed_run_continues_counters_to_clean_run_totals() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (g, uf, if_, cfg) = small_setup();

    // Uninterrupted, checkpointed run: the counter ground truth.
    let clean_dir = scratch("clean");
    let clean_store = CheckpointStore::create(&clean_dir).unwrap();
    hignn_obs::global().reset();
    hignn_obs::set_enabled(true);
    build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&clean_store), ..Default::default() },
    )
    .unwrap();
    let clean_totals = counters_now();
    hignn_obs::set_enabled(false);
    assert!(!clean_totals.is_empty(), "clean run recorded nothing");

    // Crash after level 1's checkpoint, in a "process" of its own
    // (simulated by resetting the registry afterwards).
    let dir = scratch("crash");
    let store = CheckpointStore::create(&dir).unwrap();
    hignn_obs::global().reset();
    hignn_obs::set_enabled(true);
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::CrashAfterLevel(1)),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 6, "expected injected fault: {err}");
    hignn_obs::set_enabled(false);

    // The durable meta carries the counters recorded up to the crash.
    let (_meta, snap) = store.read_meta_with_metrics().unwrap();
    let snap = snap.expect("v3 meta must embed a snapshot");
    assert!(
        snap.counters.iter().any(|(k, v)| k == "stack.levels_built" && *v == 1),
        "snapshot should record 1 built level: {snap:?}"
    );

    // Fresh process: registry starts empty, resume restores the
    // snapshot and finishes the build.
    hignn_obs::global().reset();
    hignn_obs::set_enabled(true);
    build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&store), resume: true, ..Default::default() },
    )
    .unwrap();
    let resumed_totals = counters_now();
    hignn_obs::set_enabled(false);
    hignn_obs::global().reset();

    assert_eq!(
        resumed_totals, clean_totals,
        "crash+resume counter totals must equal the uninterrupted run's"
    );

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_disabled_build_records_nothing() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (g, uf, if_, cfg) = small_setup();
    hignn_obs::global().reset();
    hignn_obs::set_enabled(false);
    build_hierarchy(&g, &uf, &if_, &cfg);
    assert!(
        counters_now().is_empty(),
        "metrics-off build must not touch the registry"
    );
}

#[test]
fn logged_build_emits_json_heartbeats_and_level_events() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (g, uf, if_, cfg) = small_setup();
    let lines = Arc::new(Mutex::new(Vec::new()));
    hignn_obs::log::set_test_sink(Some(lines.clone()));
    hignn_obs::set_log_format(Some(LogFormat::Json));
    build_hierarchy(&g, &uf, &if_, &cfg);
    hignn_obs::set_log_format(None);
    hignn_obs::log::set_test_sink(None);
    let lines = lines.lock().unwrap().clone();

    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"heartbeat\"")),
        "no heartbeat emitted: {lines:?}"
    );
    let level_done = lines.iter().filter(|l| l.contains("\"event\":\"level_done\"")).count();
    assert_eq!(level_done, 2, "expected one level_done per level: {lines:?}");
    for line in &lines {
        // Minimal JSON well-formedness: one object per line, quoted
        // event key first, balanced braces, no raw newlines.
        assert!(line.starts_with("{\"event\":\"") && line.ends_with('}'), "bad line: {line}");
        assert!(!line.contains('\n'));
    }
}
