//! Thread-count determinism integration tests.
//!
//! The parallel execution layer's contract is that the worker count is
//! purely physical: training, inference, and clustering at N threads are
//! **bit-identical** to 1 thread, because every work decomposition
//! (gradient shards, row chunks, per-shard RNG streams) is derived from
//! the configuration, never from the thread count. These tests drive
//! that contract end to end:
//!
//! * a full hierarchy build at 1 thread and at 4 threads serialises to
//!   the identical HGHI v2 file;
//! * property test: any thread count in 1..=8 reproduces the 1-thread
//!   hierarchy byte-for-byte;
//! * a build checkpointed at one thread count resumes at a *different*
//!   thread count and still reproduces the uninterrupted run
//!   byte-for-byte (composing with the PR 1 crash-recovery harness);
//! * the `HIGNN_TEST_THREADS` env knob lets CI re-run the same assertion
//!   across its thread matrix.

use hignn::io::write_hierarchy;
use hignn::prelude::*;
use hignn_graph::{BipartiteGraph, SamplingMode};
use hignn_tensor::{init, MathMode, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

// ---------------------------------------------------------------------
// Helpers (mirror `crash_recovery.rs`).

/// A small clustered graph + features + config that trains fast but
/// exercises both training levels, Lloyd clustering, and inference.
fn small_setup() -> (BipartiteGraph, Matrix, Matrix, HignnConfig) {
    let mut rng = StdRng::seed_from_u64(23);
    let (blocks, per) = (4usize, 10usize);
    let n = blocks * per;
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        let b = u as usize / per;
        for _ in 0..5 {
            let i = (b * per + rng.gen_range(0..per)) as u32;
            edges.push((u, i, 1.0));
        }
    }
    let g = BipartiteGraph::from_edges(n, n, edges);
    let uf = init::xavier_uniform(n, 8, &mut rng);
    let if_ = init::xavier_uniform(n, 8, &mut rng);
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig {
            input_dim: 8,
            dim: 8,
            fanouts: vec![4, 3],
            sampling: SamplingMode::Uniform,
            ..Default::default()
        },
        train: SageTrainConfig { epochs: 3, batch_edges: 32, neg_pool: 16, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 4.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 29,
    };
    (g, uf, if_, cfg)
}

fn serialize(h: &Hierarchy) -> Vec<u8> {
    let mut buf = Vec::new();
    write_hierarchy(&mut buf, h).expect("in-memory write cannot fail");
    buf
}

fn build_at(threads: usize) -> Vec<u8> {
    let (g, uf, if_, cfg) = small_setup();
    let h = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { threads, ..Default::default() },
    )
    .unwrap();
    serialize(&h)
}

/// [`build_at`] under an explicit math tier (DESIGN.md §14).
fn build_at_math(threads: usize, math: MathMode) -> Vec<u8> {
    let (g, uf, if_, mut cfg) = small_setup();
    cfg.train.math = math;
    let h = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { threads, ..Default::default() },
    )
    .unwrap();
    serialize(&h)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hignn_det_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------
// 1 thread vs 4 threads: identical hierarchy, identical HGHI v2 file.

#[test]
fn four_threads_produce_the_identical_hghi_file() {
    let baseline = build_at(1);
    assert_eq!(build_at(4), baseline, "4-thread build diverged from 1-thread build");
}

// ---------------------------------------------------------------------
// Panic recovery composes with the determinism contract: a worker panic
// injected into any shard of any epoch is re-executed deterministically,
// so the final model is bitwise identical to an uninjected run — at 1
// thread (inline recovery) and at 4 threads (surviving workers drain
// the queue, the failed shard re-runs after the join).

#[test]
fn injected_worker_panic_is_bitwise_invisible_at_1_and_4_threads() {
    hignn_integration_tests::support::silence_injected_panics();
    let baseline = build_at(1);
    let (g, uf, if_, cfg) = small_setup();
    for threads in [1usize, 4] {
        for (level, epoch, shard) in [(1, 0, 0), (1, 1, 3), (1, 2, 7), (2, 0, 2)] {
            let before = hignn_tensor::parallel::recovered_panics();
            let h = build_hierarchy_with(
                &g,
                &uf,
                &if_,
                &cfg,
                &BuildOptions {
                    fault: Some(FaultPlan::WorkerPanic { level, epoch, shard }),
                    threads,
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| {
                panic!("panic at L{level} E{epoch} S{shard} ({threads} threads) must recover: {e}")
            });
            assert_eq!(
                hignn_tensor::parallel::recovered_panics() - before,
                1,
                "L{level} E{epoch} S{shard} ({threads} threads): panic must fire exactly once"
            );
            assert_eq!(
                serialize(&h),
                baseline,
                "recovered build diverged at L{level} E{epoch} S{shard}, {threads} threads"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Observability inertness: metrics recording may not change a bit of
// the built hierarchy, at any thread count (DESIGN.md §10).

#[test]
fn metrics_recording_is_bitwise_inert_at_1_and_4_threads() {
    let baseline = build_at(1);
    hignn_obs::global().reset();
    hignn_obs::set_enabled(true);
    let observed_1 = build_at(1);
    let observed_4 = build_at(4);
    hignn_obs::set_enabled(false);
    assert_eq!(observed_1, baseline, "metrics-on 1-thread build diverged from metrics-off");
    assert_eq!(observed_4, baseline, "metrics-on 4-thread build diverged from metrics-off");
    // The run was actually observed, not silently disabled.
    assert!(
        hignn_obs::global().counter_get("train.batches") > 0,
        "metrics-on build recorded no batches"
    );
    hignn_obs::global().reset();
}

#[test]
fn hierarchy_fields_match_across_thread_counts() {
    // Field-level comparison (not just the serialised file) so a failure
    // pinpoints which artefact diverged.
    let (g, uf, if_, cfg) = small_setup();
    let h1 = build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap();
    let h4 = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { threads: 4, ..Default::default() },
    )
    .unwrap();
    assert_eq!(h1.num_levels(), h4.num_levels());
    for (l, (a, b)) in h1.levels().iter().zip(h4.levels()).enumerate() {
        assert_eq!(a.user_embeddings.data(), b.user_embeddings.data(), "level {l} Z_u");
        assert_eq!(a.item_embeddings.data(), b.item_embeddings.data(), "level {l} Z_i");
        assert_eq!(a.user_assignment.as_slice(), b.user_assignment.as_slice(), "level {l} C_u");
        assert_eq!(a.item_assignment.as_slice(), b.item_assignment.as_slice(), "level {l} C_i");
        assert_eq!(a.epoch_losses, b.epoch_losses, "level {l} losses");
    }
    // The hierarchical extraction is thread-independent too.
    let exec = ParallelExecutor::new(4);
    assert_eq!(h1.hierarchical_users().data(), h4.hierarchical_users_with(&exec).data());
    assert_eq!(h1.hierarchical_items().data(), h4.hierarchical_items_with(&exec).data());
}

// ---------------------------------------------------------------------
// CI matrix knob: HIGNN_TEST_THREADS re-runs the contract at the
// workflow-selected worker count (defaults to 2).

#[test]
fn env_selected_thread_count_matches_one_thread() {
    let threads: usize = std::env::var("HIGNN_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    assert!(threads >= 1, "HIGNN_TEST_THREADS must be >= 1");
    assert_eq!(
        build_at(threads),
        build_at(1),
        "HIGNN_TEST_THREADS={threads} build diverged from 1-thread build"
    );
}

// ---------------------------------------------------------------------
// Math-tier determinism (DESIGN.md §14): N threads == 1 thread holds
// *within* each tier, and each tier is self-deterministic across
// reruns. FastMath bits may legitimately differ from Bitwise bits (a
// different accumulation contract) — that cross-tier diff is bounded by
// the differential-oracle suite, not asserted here.

#[test]
fn fastmath_tier_is_deterministic_and_thread_invariant() {
    let fast1 = build_at_math(1, MathMode::FastMath);
    assert_eq!(
        build_at_math(4, MathMode::FastMath),
        fast1,
        "FastMath build diverged across thread counts"
    );
    assert_eq!(
        build_at_math(1, MathMode::FastMath),
        fast1,
        "FastMath build is not self-deterministic"
    );
}

// CI matrix knob: HIGNN_TEST_MATH re-runs the thread-invariance
// contract in the workflow-selected tier (`bitwise` | `fast`, defaults
// to bitwise).

#[test]
fn env_selected_math_tier_is_thread_invariant() {
    let math = match std::env::var("HIGNN_TEST_MATH") {
        Ok(tok) => MathMode::parse(&tok).expect("HIGNN_TEST_MATH must be bitwise|fast"),
        Err(_) => MathMode::Bitwise,
    };
    let one = build_at_math(1, math);
    assert_eq!(
        build_at_math(4, math),
        one,
        "{} tier diverged across thread counts",
        math.name()
    );
    if math == MathMode::Bitwise {
        assert_eq!(one, build_at(1), "explicit Bitwise diverged from the default build");
    }
}

// ---------------------------------------------------------------------
// Crash/resume under the parallel trainer, with the thread count
// *changing* across the crash: a checkpoint written at N threads must
// resume byte-identically at M threads.

#[test]
fn checkpoint_written_at_4_threads_resumes_at_1_and_2() {
    let (g, uf, if_, cfg) = small_setup();
    let clean_bytes = build_at(1);

    for resume_threads in [1usize, 2] {
        let dir = scratch(&format!("x{resume_threads}"));
        let store = CheckpointStore::create(&dir).unwrap();
        let err = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                fault: Some(FaultPlan::CrashAfterLevel(1)),
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.exit_code(), 6, "expected injected fault, got: {err}");
        // Provenance: the interrupted run recorded its worker count.
        assert_eq!(store.read_meta().unwrap().threads, 4);

        let resumed = build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions {
                checkpoint: Some(&store),
                resume: true,
                threads: resume_threads,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            serialize(&resumed),
            clean_bytes,
            "crash at 4 threads + resume at {resume_threads} diverged from 1-thread clean run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn mid_level_crash_under_parallel_trainer_recovers() {
    // Die inside level 2's (data-parallel) training loop at 4 threads;
    // resume at 2 threads must retrain level 2 to the same bits.
    let (g, uf, if_, cfg) = small_setup();
    let clean_bytes = build_at(1);
    let dir = scratch("midlvl_par");
    let store = CheckpointStore::create(&dir).unwrap();
    let err = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions {
            checkpoint: Some(&store),
            fault: Some(FaultPlan::CrashAfterEpoch { level: 2, epoch: 0 }),
            threads: 4,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err.exit_code(), 6, "expected injected fault, got: {err}");

    let resumed = build_hierarchy_with(
        &g,
        &uf,
        &if_,
        &cfg,
        &BuildOptions { checkpoint: Some(&store), resume: true, threads: 2, ..Default::default() },
    )
    .unwrap();
    assert_eq!(serialize(&resumed), clean_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Property test: every thread count in 1..=8 reproduces the 1-thread
// hierarchy, for several grad-shard counts (the *logical* decomposition
// may change results; the *physical* one never does).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_thread_count_is_bit_identical_to_one_thread(threads in 2usize..=8) {
        prop_assert_eq!(build_at(threads), build_at(1));
    }
}

// ---------------------------------------------------------------------
// Objective-refactor parity: the `EdgeReconstruction` objective is the
// Eq. 5 loss *extracted* from the pre-objective trainer, and extraction
// must not move a single bit. The golden hash below is the FNV-1a of
// the serialised `build_at(1)` hierarchy captured on the commit
// immediately before the `Objective` trait was introduced; the default
// configuration (objective = EdgeReconstruction) must keep reproducing
// it forever, at 1 and 4 threads.

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[test]
fn edge_reconstruction_matches_pre_refactor_golden() {
    let bytes = build_at(1);
    assert_eq!(
        fnv1a(&bytes),
        6_834_896_770_852_577_748,
        "EdgeReconstruction diverged from the pre-refactor trainer (1 thread)"
    );
    assert_eq!(build_at(4), bytes, "EdgeReconstruction diverged at 4 threads");
}

#[test]
fn grad_shards_change_bits_but_threads_never_do() {
    // Sanity check of the contract's two halves: grad_shards is part of
    // the numeric configuration (different shard counts legitimately
    // give different — equally valid — results), while threads is not.
    let (g, uf, if_, mut cfg) = small_setup();
    cfg.train.grad_shards = 2;
    let two_shards = serialize(
        &build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap(),
    );
    let two_shards_4t = serialize(
        &build_hierarchy_with(
            &g,
            &uf,
            &if_,
            &cfg,
            &BuildOptions { threads: 4, ..Default::default() },
        )
        .unwrap(),
    );
    assert_eq!(two_shards, two_shards_4t, "threads changed bits at grad_shards = 2");

    cfg.train.grad_shards = 8;
    let eight_shards = serialize(
        &build_hierarchy_with(&g, &uf, &if_, &cfg, &BuildOptions::default()).unwrap(),
    );
    assert_ne!(
        two_shards, eight_shards,
        "different shard counts should (in general) give different bits — if this ever \
         fails spuriously, the fixture is degenerate, not the engine"
    );
}
