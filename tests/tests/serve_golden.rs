//! Golden-file regression test for the serving engine.
//!
//! A committed model fixture plus byte-exact expected top-10 lists for
//! three users pin the *entire* serving path: file decode, feature
//! extraction, representative computation, scorer initialisation, MLP
//! inference, and the ranking order. Any bit-level drift in any stage
//! breaks the comparison. (CI and the development hosts are all Linux
//! x86_64, so libm variance does not churn the fixture; regenerate with
//! the ignored test below after an intentional change.)
//!
//! ```text
//! cargo test -p hignn-integration-tests --test serve_golden -- --ignored
//! ```

use hignn::io::save_hierarchy;
use hignn::stack::{Hierarchy, Level};
use hignn_graph::{Assignment, BipartiteGraph};
use hignn_serve::{ServeModel, DEFAULT_BEAM_WIDTH, DEFAULT_SCORER_SEED};
use hignn_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN_USERS: [usize; 3] = [0, 3, 7];
const GOLDEN_K: usize = 10;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

/// The fixture hierarchy: deterministic pseudo-random embeddings (fixed
/// seed, fixed draw order), 8 users x 24 items, 2 levels.
fn golden_hierarchy() -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(0x90_1de2);
    let dim = 4;
    let mut embed = |n: usize| {
        Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
    };
    let user_embeddings = embed(8);
    let item_embeddings = embed(24);
    let user_embeddings2 = embed(3);
    let item_embeddings2 = embed(6);
    let level1 = Level {
        user_embeddings,
        item_embeddings,
        user_assignment: Assignment::new((0..8).map(|v| (v % 3) as u32).collect(), 3),
        item_assignment: Assignment::new((0..24).map(|v| (v % 6) as u32).collect(), 6),
        coarsened: BipartiteGraph::from_edges(3, 6, vec![(0, 0, 1.0)]),
        epoch_losses: vec![0.5],
    };
    let level2 = Level {
        user_embeddings: user_embeddings2,
        item_embeddings: item_embeddings2,
        user_assignment: Assignment::new(vec![0, 1, 0], 2),
        item_assignment: Assignment::new(vec![0, 1, 2, 0, 1, 2], 3),
        coarsened: BipartiteGraph::from_edges(2, 3, vec![(0, 0, 1.0)]),
        epoch_losses: vec![0.25],
    };
    Hierarchy::from_parts(vec![level1, level2], 8, 24).unwrap()
}

/// Serves the golden queries and renders them in the fixture's text
/// form: one line per ranked item, `user rank item score-bits-hex`.
fn render_golden_topk(model: &ServeModel) -> String {
    let mut out = String::from("# user rank item score_bits_hex (beam inf, k = 10)\n");
    for &user in &GOLDEN_USERS {
        let ranked = model.top_k(user, GOLDEN_K, hignn_serve::BeamWidth::Infinite).unwrap();
        for (rank, s) in ranked.iter().enumerate() {
            let _ = writeln!(out, "{user} {rank} {} {:08x}", s.item, s.score.to_bits());
        }
    }
    out
}

#[test]
fn fixture_model_serves_the_committed_topk_lists_byte_exactly() {
    let model = ServeModel::load(fixture_path("serve_model_v2.hghi"), DEFAULT_SCORER_SEED)
        .expect("fixture missing — run the ignored regenerate test and commit the files");
    let want = std::fs::read_to_string(fixture_path("serve_topk_golden.txt"))
        .expect("fixture missing — run the ignored regenerate test and commit the files");
    assert_eq!(
        render_golden_topk(&model),
        want,
        "serving output drifted from the committed golden lists"
    );
}

#[test]
fn fixture_bytes_match_the_in_memory_golden_hierarchy() {
    let bytes = std::fs::read(fixture_path("serve_model_v2.hghi")).unwrap();
    let mut reencoded = Vec::new();
    hignn::io::write_hierarchy(&mut reencoded, &golden_hierarchy()).unwrap();
    assert_eq!(reencoded, bytes, "the fixture no longer matches its generator");
}

/// At the default (finite) beam width the golden model must still reach
/// full recall on the golden users — the fixture doubles as a recall
/// canary for the default serving configuration.
#[test]
fn default_beam_width_reaches_full_recall_on_the_golden_model() {
    let model =
        ServeModel::load(fixture_path("serve_model_v2.hghi"), DEFAULT_SCORER_SEED).unwrap();
    for &user in &GOLDEN_USERS {
        let approx = model.top_k(user, GOLDEN_K, DEFAULT_BEAM_WIDTH).unwrap();
        let exact = model.exhaustive_top_k(user, GOLDEN_K).unwrap();
        let exact_items: Vec<u32> = exact.iter().map(|s| s.item).collect();
        for s in &exact {
            assert!(
                approx.iter().any(|a| a.item == s.item),
                "user {user}: default beam missed item {} of exact top-10 {exact_items:?}",
                s.item
            );
        }
    }
}

/// Writes the fixtures. Ignored by default — run explicitly (and commit
/// the result) only after an intentional serving or format change.
#[test]
#[ignore = "regenerates the committed fixtures; run only on intentional serving changes"]
fn regenerate_serve_golden_fixtures() {
    let h = golden_hierarchy();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    save_hierarchy(fixture_path("serve_model_v2.hghi"), &h).unwrap();
    let model = ServeModel::load(fixture_path("serve_model_v2.hghi"), DEFAULT_SCORER_SEED).unwrap();
    std::fs::write(fixture_path("serve_topk_golden.txt"), render_golden_topk(&model)).unwrap();
}
