//! Serving-engine robustness: determinism of repeated queries, NaN
//! poisoning, malformed requests, and corrupt model files.

use hignn::error::HignnError;
use hignn::io::save_hierarchy;
use hignn::stack::{Hierarchy, Level};
use hignn_graph::{Assignment, BipartiteGraph};
use hignn_serve::{BeamWidth, ScoredItem, ServeModel, TopKRequest, DEFAULT_BEAM_WIDTH};
use hignn_tensor::{Matrix, ParallelExecutor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hignn_serve_engine_{}_{name}", std::process::id()))
}

/// A deterministic random 2-level hierarchy (8 users, 20 items).
fn hierarchy(seed: u64) -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = 3;
    let mut embed = |n: usize| {
        Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
    };
    let level1 = Level {
        user_embeddings: embed(8),
        item_embeddings: embed(20),
        user_assignment: Assignment::new((0..8).map(|v| (v % 3) as u32).collect(), 3),
        item_assignment: Assignment::new((0..20).map(|v| (v % 5) as u32).collect(), 5),
        coarsened: BipartiteGraph::from_edges(3, 5, vec![(0, 0, 1.0)]),
        epoch_losses: vec![],
    };
    let mut embed2 = |n: usize| {
        Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
    };
    let level2 = Level {
        user_embeddings: embed2(3),
        item_embeddings: embed2(5),
        user_assignment: Assignment::new(vec![0, 1, 0], 2),
        item_assignment: Assignment::new(vec![0, 1, 0, 1, 0], 2),
        coarsened: BipartiteGraph::from_edges(2, 2, vec![(0, 0, 1.0)]),
        epoch_losses: vec![],
    };
    Hierarchy::from_parts(vec![level1, level2], 8, 20).unwrap()
}

fn bits(items: &[ScoredItem]) -> Vec<(u32, u32)> {
    items.iter().map(|s| (s.item, s.score.to_bits())).collect()
}

#[test]
fn repeated_identical_queries_are_bitwise_identical() {
    let model = ServeModel::from_hierarchy(hierarchy(11), 2020);
    for beam in [BeamWidth::Finite(2), DEFAULT_BEAM_WIDTH, BeamWidth::Infinite] {
        let first = model.top_k(3, 5, beam).unwrap();
        for _ in 0..5 {
            let again = model.top_k(3, 5, beam).unwrap();
            assert_eq!(bits(&again), bits(&first), "beam {beam}");
        }
    }
    // Two independently loaded models over the same file agree too.
    let path = temp_path("repeat.hgh");
    save_hierarchy(&path, &hierarchy(11)).unwrap();
    let a = ServeModel::load(&path, 2020).unwrap().top_k(3, 5, DEFAULT_BEAM_WIDTH).unwrap();
    let b = ServeModel::load(&path, 2020).unwrap().top_k(3, 5, DEFAULT_BEAM_WIDTH).unwrap();
    assert_eq!(bits(&a), bits(&b));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn thread_count_never_changes_a_batch() {
    let model = ServeModel::from_hierarchy(hierarchy(23), 7);
    let requests: Vec<TopKRequest> = (0..32)
        .map(|i| TopKRequest { user: i % 8, k: 1 + i % 7, beam: BeamWidth::Finite(1 + i % 4) })
        .collect();
    let collect = |threads: usize| -> Vec<Vec<(u32, u32)>> {
        model
            .serve_batch(&requests, &ParallelExecutor::new(threads))
            .iter()
            .map(|r| bits(r.as_ref().unwrap()))
            .collect()
    };
    let one = collect(1);
    assert_eq!(collect(2), one);
    assert_eq!(collect(4), one);
}

/// The PR 5 NaN lesson, applied to serving: a NaN-scored item must sort
/// after every finite-scored item (plain `total_cmp` descending would
/// rank positive NaN *above* +inf) and must never panic the sort or
/// poison the rest of the ranking.
#[test]
fn nan_features_never_poison_the_ranking() {
    let h = hierarchy(31);
    // Wreck item 0's level-1 embedding with NaN: its z_i^H — and every
    // score it takes part in — becomes NaN.
    let broken = Hierarchy::from_parts(
        {
            let mut levels = h.levels().to_vec();
            let dim = levels[0].item_embeddings.cols();
            levels[0].item_embeddings.set_row(0, &vec![f32::NAN; dim]);
            levels
        },
        h.num_users(),
        h.num_items(),
    )
    .unwrap();
    let model = ServeModel::from_hierarchy(broken, 2020);
    for user in 0..model.num_users() {
        let all = model.exhaustive_top_k(user, model.num_items()).unwrap();
        assert_eq!(all.len(), model.num_items());
        // Finite scores first; NaN (item 0) dead last.
        let first_nan = all.iter().position(|s| s.score.is_nan()).unwrap();
        assert!(
            all[first_nan..].iter().all(|s| s.score.is_nan()),
            "NaN scores must be contiguous at the tail"
        );
        assert_eq!(all.last().unwrap().item, 0, "the NaN item sorts last, not first");
        // A top-k that doesn't need the NaN item never returns it.
        let top = model.top_k(user, 3, BeamWidth::Infinite).unwrap();
        assert!(top.iter().all(|s| !s.score.is_nan()), "user {user}: {top:?}");
    }
    // Sanity: the unbroken model scores the same user without NaN.
    let clean = ServeModel::from_hierarchy(h, 2020);
    let top = clean.exhaustive_top_k(0, 5).unwrap();
    assert!(top.iter().all(|s| s.score.is_finite()));
}

#[test]
fn malformed_requests_are_config_errors_not_panics() {
    let model = ServeModel::from_hierarchy(hierarchy(47), 2020);
    // k = 0.
    let err = model.top_k(0, 0, DEFAULT_BEAM_WIDTH).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("at least 1"), "{err}");
    // k > num_items.
    let err = model.top_k(0, model.num_items() + 1, DEFAULT_BEAM_WIDTH).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("exceeds"), "{err}");
    // Unknown user.
    let err = model.top_k(model.num_users(), 1, DEFAULT_BEAM_WIDTH).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    assert!(err.to_string().contains("unknown user"), "{err}");
    // The same contract holds through the batch path, and one bad
    // request never sinks its neighbours.
    let requests = [
        TopKRequest { user: 0, k: 3, beam: DEFAULT_BEAM_WIDTH },
        TopKRequest { user: 999, k: 3, beam: DEFAULT_BEAM_WIDTH },
        TopKRequest { user: 1, k: 3, beam: DEFAULT_BEAM_WIDTH },
    ];
    let results = model.serve_batch(&requests, &ParallelExecutor::new(2));
    assert!(results[0].is_ok());
    assert_eq!(results[1].as_ref().unwrap_err().exit_code(), 2);
    assert!(results[2].is_ok());
}

/// Every truncation and every flipped byte of a model file must surface
/// as a structured error (Corrupt, exit 4 — or Io, exit 3, for a cut
/// that removes the header), never a panic or a silently wrong model.
#[test]
fn corrupt_model_files_are_rejected_structurally() {
    let path = temp_path("corrupt.hgh");
    save_hierarchy(&path, &hierarchy(59)).unwrap();
    let good = std::fs::read(&path).unwrap();
    assert!(ServeModel::load(&path, 1).is_ok());

    // Truncations at every 17th length.
    for cut in (0..good.len()).step_by(17) {
        std::fs::write(&path, &good[..cut]).unwrap();
        let err = ServeModel::load(&path, 1).unwrap_err();
        assert!(
            matches!(err, HignnError::Corrupt { .. } | HignnError::Io { .. }),
            "truncation at {cut}: unexpected {err}"
        );
        assert!(err.exit_code() == 3 || err.exit_code() == 4, "truncation at {cut}");
    }
    // Single-byte flips at every 13th offset. Flips inside a section
    // payload or frame must be caught by the CRC (exit 4); flips in the
    // 8-byte magic/version header may also read as Io (exit 3).
    for off in (0..good.len()).step_by(13) {
        let mut bad = good.clone();
        bad[off] ^= 0x20;
        std::fs::write(&path, &bad).unwrap();
        match ServeModel::load(&path, 1) {
            Err(err) => assert!(
                err.exit_code() == 3 || err.exit_code() == 4,
                "flip at {off}: unexpected {err}"
            ),
            // A flip inside a section *length* field can still frame a
            // CRC-valid subset only if the CRC collides — that would be
            // a miracle; a clean load here means the flip landed in a
            // byte the format legitimately ignores. The v2 format has
            // none, so a successful load is a failure.
            Ok(_) => panic!("flip at {off} went undetected"),
        }
    }
    let _ = std::fs::remove_file(&path);
}
