//! Cross-crate integration: dataset ground truth driving the A/B
//! simulator with different ranking policies.

use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_simulator::{
    run_ab, AbConfig, PopularityRanker, RandomRanker, ScoreFnRanker, TopicAffinityRanker,
};

fn tiny() -> hignn_datasets::InteractionDataset {
    generate_taobao(&TaobaoConfig {
        num_users: 200,
        num_items: 150,
        train_interactions: 4000,
        test_interactions: 400,
        branching: vec![3, 3],
        num_categories: 12,
        focus: 0.7,
        base_purchase_logit: -2.0,
        affinity_gain: 4.0,
        quality_gain: 0.4,
        feature_dim: 8,
        max_history: 10,
        seed: 55,
    })
}

fn ab_cfg() -> AbConfig {
    AbConfig {
        sessions_per_day: 800,
        days: 2,
        candidates: 25,
        items_per_page: 5,
        seed: 11,
        ..Default::default()
    }
}

#[test]
fn affinity_oracle_beats_popularity() {
    let ds = tiny();
    let pool: Vec<u32> = (0..ds.num_items() as u32).collect();
    let popularity: Vec<f32> = (0..ds.num_items())
        .map(|i| ds.graph.neighbors(hignn_graph::Side::Right, i).1.iter().sum())
        .collect();
    let control = PopularityRanker::new(popularity);
    let truth = &ds.truth;
    let oracle = ScoreFnRanker::new("oracle", |u, c| {
        c.iter().map(|&i| truth.affinity(u, i as usize)).collect()
    });
    let outcome = run_ab(truth, &pool, &control, &oracle, &ab_cfg());
    let total = outcome.total();
    assert!(total.ctr_lift() > 3.0, "oracle CTR lift {:+.2}%", total.ctr_lift());
}

#[test]
fn ground_truth_topics_beat_shuffled_topics() {
    // A topic-affinity ranker with the TRUE leaf assignment must beat the
    // same ranker with a shuffled (garbage) assignment.
    let ds = tiny();
    let pool: Vec<u32> = (0..ds.num_items() as u32).collect();
    let true_topics: Vec<u32> =
        (0..ds.num_items()).map(|i| ds.truth.item_leaf_index(i)).collect();
    let mut shuffled = true_topics.clone();
    // Deterministic rotation = garbage but same topic-size profile.
    shuffled.rotate_left(ds.num_items() / 3);
    let popularity = vec![1.0f32; ds.num_items()];
    let control =
        TopicAffinityRanker::new("shuffled", shuffled, &ds.histories, popularity.clone());
    let treatment =
        TopicAffinityRanker::new("true-topics", true_topics, &ds.histories, popularity);
    let outcome = run_ab(&ds.truth, &pool, &control, &treatment, &ab_cfg());
    let total = outcome.total();
    assert!(
        total.ctr_lift() > 2.0,
        "true topics CTR lift {:+.2}%",
        total.ctr_lift()
    );
}

#[test]
fn common_random_numbers_make_equal_arms_tie_exactly() {
    let ds = tiny();
    let pool: Vec<u32> = (0..ds.num_items() as u32).collect();
    let a = RandomRanker::new(123);
    let b = RandomRanker::new(123);
    let outcome = run_ab(&ds.truth, &pool, &a, &b, &ab_cfg());
    let total = outcome.total();
    assert_eq!(total.control, total.treatment);
}

#[test]
fn day_metrics_are_internally_consistent() {
    let ds = tiny();
    let pool: Vec<u32> = (0..ds.num_items() as u32).collect();
    let a = RandomRanker::new(1);
    let b = RandomRanker::new(2);
    let outcome = run_ab(&ds.truth, &pool, &a, &b, &ab_cfg());
    for day in &outcome.days {
        for arm in [day.control, day.treatment] {
            assert!(arm.clicks <= arm.visits);
            assert!(arm.transactions <= arm.clicks);
            assert!(arm.unique_clicked_visitors <= arm.clicks);
            assert!(arm.ctr() <= 1.0 && arm.cvr() <= 1.0);
        }
    }
}
