//! Cross-crate integration: save a trained hierarchy, reload it, and
//! verify downstream consumers (predictor features, taxonomy-style
//! assignments) behave identically.

use hignn::io::{read_hierarchy, write_hierarchy};
use hignn::prelude::*;
use hignn_baselines::Variant;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_graph::SamplingMode;
use hignn_metrics::auc;

fn tiny() -> (hignn_datasets::InteractionDataset, Hierarchy) {
    let ds = generate_taobao(&TaobaoConfig {
        num_users: 200,
        num_items: 120,
        train_interactions: 4000,
        test_interactions: 800,
        branching: vec![3, 3],
        num_categories: 10,
        focus: 0.7,
        base_purchase_logit: -2.5,
        affinity_gain: 4.0,
        quality_gain: 0.4,
        feature_dim: 8,
        max_history: 8,
        seed: 91,
    });
    let cfg = HignnConfig {
        levels: 2,
        sage: BipartiteSageConfig {
            input_dim: 8,
            dim: 8,
            fanouts: vec![4, 2],
            sampling: SamplingMode::WeightBiased,
            ..Default::default()
        },
        train: SageTrainConfig { epochs: 2, batch_edges: 128, ..Default::default() },
        cluster_counts: ClusterCounts::AlphaDecay { alpha: 5.0 },
        kmeans: KMeansAlgo::Lloyd,
        normalize: true,
        seed: 92,
    };
    let h = build_hierarchy(&ds.graph, &ds.user_features, &ds.item_features, &cfg);
    (ds, h)
}

#[test]
fn reloaded_hierarchy_drives_identical_predictions() {
    let (ds, h) = tiny();
    let mut buf = Vec::new();
    write_hierarchy(&mut buf, &h).unwrap();
    let reloaded = read_hierarchy(&mut buf.as_slice()).unwrap();

    let to_pred = |samples: &[hignn_datasets::Sample]| -> Vec<hignn::predictor::Sample> {
        samples
            .iter()
            .map(|s| hignn::predictor::Sample::new(s.user, s.item, s.label))
            .collect()
    };
    let labels: Vec<bool> = ds.test.iter().map(|s| s.label).collect();

    let mut aucs = Vec::new();
    for hierarchy in [&h, &reloaded] {
        let (uh, ih) = Variant::HiGnn.embeddings(hierarchy);
        let features = FeatureBlocks {
            user_hier: uh.as_ref(),
            item_hier: ih.as_ref(),
            user_profiles: &ds.user_profiles,
            item_stats: &ds.item_stats,
        };
        let model = CvrPredictor::train(
            &features,
            &to_pred(&ds.train),
            &PredictorConfig { epochs: 1, batch: 256, hidden: vec![32], seed: 7, ..Default::default() },
        );
        let probs = model.predict(&features, &to_pred(&ds.test));
        aucs.push(auc(&probs, &labels));
    }
    // Same inputs + same seed: byte-identical training, identical AUC.
    assert_eq!(aucs[0], aucs[1]);
}

#[test]
fn reloaded_hierarchy_preserves_cluster_structure() {
    let (ds, h) = tiny();
    let mut buf = Vec::new();
    write_hierarchy(&mut buf, &h).unwrap();
    let reloaded = read_hierarchy(&mut buf.as_slice()).unwrap();
    for level in 1..=h.num_levels() {
        let a = h.item_clusters_at(level);
        let b = reloaded.item_clusters_at(level);
        for i in 0..ds.num_items() {
            assert_eq!(a.cluster_of(i), b.cluster_of(i));
        }
    }
    for u in [0usize, 11, 57] {
        assert_eq!(h.user_chain(u), reloaded.user_chain(u));
        assert_eq!(h.hierarchical_user(u), reloaded.hierarchical_user(u));
    }
}
