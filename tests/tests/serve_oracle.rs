//! The serving engine's oracle contract, under proptest.
//!
//! Three properties anchor the beam-search approximation to an
//! exhaustive ground truth, over randomly shaped hierarchies:
//!
//! 1. **Beam ∞ is bitwise identical to exhaustive scoring** — same
//!    items, same score *bits* — at 1 and 4 serving threads.
//! 2. **Exhaustive scores themselves are bitwise identical to the
//!    differential oracle**: the scorer's exported weights fed through
//!    `hignn_oracle::mlp::forward` (naive triple loops, no shared
//!    inference code) reproduce every leaf logit bit.
//! 3. **Recall@k is non-decreasing in beam width** — widening the beam
//!    never loses a true top-k item.
//!
//! Failures persist their seeds to `proptest-regressions/` so a caught
//! counterexample replays forever.

use hignn::stack::{Hierarchy, Level};
use hignn_graph::{Assignment, BipartiteGraph};
use hignn_oracle::mlp::{forward, DenseLayer};
use hignn_serve::{BeamWidth, ServeModel, TopKRequest};
use hignn_tensor::{Matrix, ParallelExecutor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random but *valid* hierarchy: `levels` levels of random
/// embeddings and surjective assignments with geometrically shrinking
/// cluster counts. Deterministic in `seed`, so proptest shrinking and
/// regression replay reproduce the exact hierarchy.
fn random_hierarchy(
    num_users: usize,
    num_items: usize,
    dim: usize,
    levels: usize,
    seed: u64,
) -> Hierarchy {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n_u = num_users;
    let mut n_i = num_items;
    let mut built = Vec::with_capacity(levels);
    for _ in 0..levels {
        // Surjective: entity v < k pins cluster v, the rest draw freely.
        let k_u = rng.gen_range(1..=n_u);
        let k_i = rng.gen_range(1..=n_i);
        let assign = |n: usize, k: usize, rng: &mut StdRng| {
            Assignment::new(
                (0..n).map(|v| if v < k { v as u32 } else { rng.gen_range(0..k as u32) }).collect(),
                k,
            )
        };
        let user_assignment = assign(n_u, k_u, &mut rng);
        let item_assignment = assign(n_i, k_i, &mut rng);
        let embed = |n: usize, rng: &mut StdRng| {
            Matrix::from_vec(n, dim, (0..n * dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect())
        };
        built.push(Level {
            user_embeddings: embed(n_u, &mut rng),
            item_embeddings: embed(n_i, &mut rng),
            user_assignment,
            item_assignment,
            coarsened: BipartiteGraph::from_edges(k_u, k_i, vec![(0, 0, 1.0)]),
            epoch_losses: vec![],
        });
        n_u = k_u;
        n_i = k_i;
    }
    Hierarchy::from_parts(built, num_users, num_items).expect("random hierarchy is consistent")
}

fn bits(items: &[hignn_serve::ScoredItem]) -> Vec<(u32, u32)> {
    items.iter().map(|s| (s.item, s.score.to_bits())).collect()
}

fn recall(approx: &[hignn_serve::ScoredItem], exact: &[hignn_serve::ScoredItem]) -> f64 {
    let hits = exact.iter().filter(|e| approx.iter().any(|a| a.item == e.item)).count();
    hits as f64 / exact.len().max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: with nothing pruned, the coarse-to-fine descent must
    /// return exactly what scoring every item returns — items AND score
    /// bits — on the inline path and through `serve_batch` at 1 and 4
    /// threads.
    #[test]
    fn beam_infinity_is_bitwise_exhaustive_at_1_and_4_threads(
        num_users in 2usize..5,
        num_items in 4usize..24,
        dim in 1usize..4,
        levels in 1usize..4,
        seed in any::<u64>(),
        k in 1usize..12,
    ) {
        let k = k.min(num_items);
        let h = random_hierarchy(num_users, num_items, dim, levels, seed);
        let model = ServeModel::from_hierarchy(h, seed ^ 0x5E12);
        let requests: Vec<TopKRequest> = (0..num_users)
            .map(|user| TopKRequest { user, k, beam: BeamWidth::Infinite })
            .collect();
        let exact: Vec<_> =
            (0..num_users).map(|u| model.exhaustive_top_k(u, k).unwrap()).collect();
        for (u, want) in exact.iter().enumerate() {
            let got = model.top_k(u, k, BeamWidth::Infinite).unwrap();
            prop_assert_eq!(bits(&got), bits(want), "inline beam-inf diverged for user {}", u);
        }
        for threads in [1usize, 4] {
            let exec = ParallelExecutor::new(threads);
            let got = model.serve_batch(&requests, &exec);
            for (u, (g, want)) in got.iter().zip(&exact).enumerate() {
                let g = g.as_ref().expect("valid request");
                prop_assert_eq!(
                    bits(g), bits(want),
                    "{}-thread serve_batch diverged for user {}", threads, u
                );
            }
        }
    }

    /// Property 2: exhaustive leaf scores match the differential oracle
    /// bitwise. The oracle gets only the exported weights and the plain
    /// concatenated features — a shared-bug in the inference kernels
    /// cannot hide.
    #[test]
    fn exhaustive_scores_match_the_naive_oracle_bitwise(
        num_users in 2usize..4,
        num_items in 4usize..16,
        dim in 1usize..4,
        levels in 1usize..3,
        seed in any::<u64>(),
    ) {
        let h = random_hierarchy(num_users, num_items, dim, levels, seed);
        let model = ServeModel::from_hierarchy(h, seed ^ 0x0AC1E);
        let layers: Vec<DenseLayer> = model
            .scorer()
            .export_layers()
            .into_iter()
            .map(|(w, b)| DenseLayer { w, b })
            .collect();
        for user in 0..num_users {
            let ranked = model.exhaustive_top_k(user, num_items).unwrap();
            let uf = model.user_features().row(user);
            for s in &ranked {
                let mut x = uf.to_vec();
                x.extend_from_slice(model.item_features().row(s.item as usize));
                let y = forward(&vec![x], &layers, 0.01);
                prop_assert_eq!(
                    y[0][0].to_bits(), s.score.to_bits(),
                    "oracle logit diverged for user {} item {}", user, s.item
                );
            }
        }
    }

    /// Property 3: recall@k against the exhaustive top-k never drops
    /// when the beam widens (survivor sets are nested prefixes under the
    /// total ranking order).
    #[test]
    fn recall_is_monotone_in_beam_width(
        num_users in 2usize..5,
        num_items in 6usize..24,
        dim in 1usize..4,
        levels in 1usize..4,
        seed in any::<u64>(),
        k in 1usize..8,
    ) {
        let k = k.min(num_items);
        let h = random_hierarchy(num_users, num_items, dim, levels, seed);
        let model = ServeModel::from_hierarchy(h, seed ^ 0xBEA3);
        let widths = [
            BeamWidth::Finite(1),
            BeamWidth::Finite(2),
            BeamWidth::Finite(3),
            BeamWidth::Finite(5),
            BeamWidth::Finite(8),
            BeamWidth::Finite(num_items),
            BeamWidth::Infinite,
        ];
        for user in 0..num_users {
            let exact = model.exhaustive_top_k(user, k).unwrap();
            let mut prev = -1.0f64;
            for beam in widths {
                let approx = model.top_k(user, k, beam).unwrap();
                let r = recall(&approx, &exact);
                prop_assert!(
                    r >= prev,
                    "recall dropped {} -> {} at beam {} for user {}", prev, r, beam, user
                );
                prev = r;
            }
            prop_assert_eq!(prev, 1.0, "beam-inf recall must be perfect for user {}", user);
        }
    }
}
