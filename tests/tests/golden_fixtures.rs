//! Golden-file regression tests for the HGHI hierarchy format.
//!
//! The committed fixtures under `fixtures/` pin the on-disk encoding of
//! both format versions. Unlike round-trip tests (which a symmetric
//! encoding bug passes), these catch *any* byte-level change to the
//! format: a writer change breaks the byte-exact re-encode assertions,
//! a reader change breaks the load assertions. If you change the format
//! deliberately, bump the version, add a new fixture, and keep the old
//! ones loading — v1 files in the wild must stay readable.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! cargo test -p hignn-integration-tests --test golden_fixtures -- --ignored
//! ```

use hignn::io::{read_hierarchy, write_hierarchy, write_hierarchy_v1};
use hignn::stack::{Hierarchy, Level};
use hignn_graph::{Assignment, BipartiteGraph};
use hignn_tensor::Matrix;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

/// A small hand-built hierarchy. Every float is exactly representable
/// (dyadic rationals), every field deterministic — so the encoded bytes
/// are identical on every platform and the fixtures never churn.
fn golden_hierarchy() -> Hierarchy {
    let level1 = Level {
        user_embeddings: Matrix::from_vec(
            4,
            2,
            vec![0.5, -0.25, 1.0, 0.75, -1.5, 0.125, 2.0, -0.5],
        ),
        item_embeddings: Matrix::from_vec(3, 2, vec![0.25, 0.5, -0.75, 1.25, 0.0, -2.0]),
        user_assignment: Assignment::new(vec![0, 1, 0, 1], 2),
        item_assignment: Assignment::new(vec![0, 0, 1], 2),
        coarsened: BipartiteGraph::from_edges(
            2,
            2,
            vec![(0, 0, 1.5), (0, 1, 0.5), (1, 1, 2.0)],
        ),
        epoch_losses: vec![0.75, 0.5],
    };
    let level2 = Level {
        user_embeddings: Matrix::from_vec(2, 2, vec![0.5, 0.5, -0.25, 0.125]),
        item_embeddings: Matrix::from_vec(2, 2, vec![1.0, -1.0, 0.75, 0.25]),
        user_assignment: Assignment::new(vec![0, 0], 1),
        item_assignment: Assignment::new(vec![0, 1], 2),
        coarsened: BipartiteGraph::from_edges(1, 2, vec![(0, 0, 2.0), (0, 1, 0.25)]),
        epoch_losses: vec![0.25],
    };
    Hierarchy::from_parts(vec![level1, level2], 4, 3).expect("golden hierarchy is consistent")
}

fn assert_hierarchy_matches_golden(h: &Hierarchy) {
    let golden = golden_hierarchy();
    assert_eq!(h.num_users(), golden.num_users());
    assert_eq!(h.num_items(), golden.num_items());
    assert_eq!(h.num_levels(), golden.num_levels());
    for (got, want) in h.levels().iter().zip(golden.levels()) {
        assert_eq!(got.user_embeddings, want.user_embeddings);
        assert_eq!(got.item_embeddings, want.item_embeddings);
        assert_eq!(got.user_assignment, want.user_assignment);
        assert_eq!(got.item_assignment, want.item_assignment);
        assert_eq!(got.coarsened.edges(), want.coarsened.edges());
        assert_eq!(got.epoch_losses, want.epoch_losses);
    }
}

#[test]
fn v2_fixture_loads_and_writer_reproduces_it_byte_exactly() {
    let bytes = std::fs::read(fixture_path("hierarchy_v2.hghi"))
        .expect("fixture missing — run the ignored regenerate test and commit the files");
    let loaded = read_hierarchy(&mut bytes.as_slice()).expect("v2 fixture must load");
    assert_hierarchy_matches_golden(&loaded);

    let mut reencoded = Vec::new();
    write_hierarchy(&mut reencoded, &golden_hierarchy()).unwrap();
    assert_eq!(
        reencoded, bytes,
        "v2 writer no longer produces the committed bytes — the format changed"
    );
}

#[test]
fn v1_fixture_loads_and_writer_reproduces_it_byte_exactly() {
    let bytes = std::fs::read(fixture_path("hierarchy_v1.hghi"))
        .expect("fixture missing — run the ignored regenerate test and commit the files");
    let loaded = read_hierarchy(&mut bytes.as_slice()).expect("legacy v1 fixture must load");
    assert_hierarchy_matches_golden(&loaded);

    let mut reencoded = Vec::new();
    write_hierarchy_v1(&mut reencoded, &golden_hierarchy()).unwrap();
    assert_eq!(
        reencoded, bytes,
        "v1 writer no longer produces the committed bytes — legacy compatibility broke"
    );
}

#[test]
fn version_headers_are_pinned() {
    let v1 = std::fs::read(fixture_path("hierarchy_v1.hghi")).unwrap();
    let v2 = std::fs::read(fixture_path("hierarchy_v2.hghi")).unwrap();
    assert_eq!(&v1[..4], b"HGHI");
    assert_eq!(&v2[..4], b"HGHI");
    assert_eq!(u32::from_le_bytes(v1[4..8].try_into().unwrap()), 1);
    assert_eq!(u32::from_le_bytes(v2[4..8].try_into().unwrap()), 2);
}

/// Writes the fixtures. Ignored by default — run explicitly (and commit
/// the result) only after an intentional format change.
#[test]
#[ignore = "regenerates the committed fixtures; run only on intentional format changes"]
fn regenerate_golden_fixtures() {
    let h = golden_hierarchy();
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let mut v2 = Vec::new();
    write_hierarchy(&mut v2, &h).unwrap();
    std::fs::write(fixture_path("hierarchy_v2.hghi"), v2).unwrap();
    let mut v1 = Vec::new();
    write_hierarchy_v1(&mut v1, &h).unwrap();
    std::fs::write(fixture_path("hierarchy_v1.hghi"), v1).unwrap();
}
