//! Cross-crate integration: query-item dataset → word2vec features →
//! HiGNN taxonomy → structural and description invariants; SHOAL
//! comparison machinery.

use hignn::prelude::*;
use hignn_baselines::build_shoal;
use hignn_datasets::query_item::{generate_query_item, QueryItemConfig};
use hignn_graph::SamplingMode;
use hignn_metrics::{taxonomy_accuracy, taxonomy_diversity};
use hignn_tensor::Matrix;
use hignn_text::{mean_embedding, train_word2vec, Word2VecConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_qi(seed: u64) -> hignn_datasets::QueryItemDataset {
    generate_query_item(&QueryItemConfig {
        num_queries: 150,
        num_items: 250,
        interactions: 5000,
        branching: vec![3, 3],
        num_categories: 15,
        focus: 0.85,
        title_tokens: 6,
        query_tokens: 3,
        seed,
    })
}

fn features(ds: &hignn_datasets::QueryItemDataset, seed: u64) -> (Matrix, Matrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let emb = train_word2vec(
        &ds.corpus(),
        ds.vocab.counts(),
        &Word2VecConfig { dim: 16, epochs: 2, ..Default::default() },
        &mut rng,
    );
    let to = |tokens: &[Vec<u32>]| {
        let mut m = Matrix::zeros(tokens.len(), 16);
        for (r, t) in tokens.iter().enumerate() {
            m.set_row(r, &mean_embedding(t, &emb));
        }
        m
    };
    (to(&ds.query_tokens), to(&ds.item_tokens))
}

fn tiny_taxonomy(ds: &hignn_datasets::QueryItemDataset, seed: u64) -> Taxonomy {
    let (qf, if_) = features(ds, seed);
    let cfg = TaxonomyConfig {
        hignn: HignnConfig {
            levels: 2,
            sage: BipartiteSageConfig {
                input_dim: 16,
                dim: 16,
                fanouts: vec![4, 2],
                sampling: SamplingMode::WeightBiased,
                shared_weights: true,
                ..Default::default()
            },
            train: SageTrainConfig { epochs: 2, batch_edges: 128, ..Default::default() },
            cluster_counts: ClusterCounts::Fixed(vec![(20, 25), (5, 6)]),
            kmeans: KMeansAlgo::Lloyd,
            normalize: true,
            seed,
        },
        ..Default::default()
    };
    build_taxonomy(
        &ds.graph,
        &qf,
        &if_,
        &ds.query_texts,
        &ds.query_tokens,
        &ds.item_tokens,
        &cfg,
    )
}

#[test]
fn taxonomy_structure_is_consistent() {
    let ds = tiny_qi(7);
    let tax = tiny_taxonomy(&ds, 1);
    assert!(tax.num_levels() >= 1);
    for level in 1..=tax.num_levels() {
        // Every item in exactly one topic.
        let total: usize = tax.level_topics(level).iter().map(|t| t.items.len()).sum();
        assert_eq!(total, ds.graph.num_right());
        // Parent/child agreement.
        if level < tax.num_levels() {
            for t in tax.level_topics(level) {
                let p = tax.parent(level, t.id).unwrap();
                assert!(tax.children(level + 1, p).contains(&t.id));
            }
        }
    }
}

#[test]
fn taxonomy_beats_random_assignment_on_structure() {
    let ds = tiny_qi(8);
    let tax = tiny_taxonomy(&ds, 2);
    let assignment = tax.item_assignment(1);
    let truth: Vec<u32> =
        (0..ds.graph.num_right()).map(|i| ds.truth.item_leaf_index(i)).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let k = assignment.iter().copied().max().unwrap() as usize + 1;
    let random: Vec<u32> =
        (0..assignment.len()).map(|_| rng.gen_range(0..k as u32)).collect();
    let acc_tax = taxonomy_accuracy(&assignment, &truth, 100, 100, &mut rng);
    let acc_rand = taxonomy_accuracy(&random, &truth, 100, 100, &mut rng);
    assert!(
        acc_tax > acc_rand,
        "taxonomy accuracy {acc_tax} should beat random {acc_rand}"
    );
}

#[test]
fn shoal_runs_on_same_features_and_counts() {
    let ds = tiny_qi(9);
    let tax = tiny_taxonomy(&ds, 4);
    let (_qf, if_) = features(&ds, 4);
    let counts: Vec<usize> = (1..=tax.num_levels())
        .map(|l| {
            tax.item_assignment(l).iter().copied().max().unwrap() as usize + 1
        })
        .collect();
    let shoal = build_shoal(&if_, &counts);
    assert_eq!(shoal.num_levels(), tax.num_levels());
    for (lvl, a) in shoal.item_levels.iter().enumerate() {
        assert_eq!(a.len(), ds.graph.num_right());
        let div = taxonomy_diversity(a, &ds.truth.item_category, 3);
        assert!((0.0..=1.0).contains(&div), "level {lvl} diversity {div}");
    }
}

#[test]
fn descriptions_reference_real_queries() {
    let ds = tiny_qi(10);
    let tax = tiny_taxonomy(&ds, 5);
    let mut labelled = 0;
    for level in 1..=tax.num_levels() {
        for t in tax.level_topics(level) {
            for &q in &t.description_queries {
                assert!((q as usize) < ds.query_texts.len());
            }
            if !t.description.is_empty() {
                labelled += 1;
                assert!(ds.query_texts.contains(&t.description));
            }
        }
    }
    assert!(labelled > 0, "no topics were labelled");
}

use rand::Rng;
