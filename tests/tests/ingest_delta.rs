//! Streaming-ingestion contracts: the HGHD delta format fails closed on
//! any corruption (the same discipline `persistence.rs` enforces for
//! the model format), delta application is exact and refuses wrong
//! bases, ingestion commutes with persistence bitwise, and a serving
//! replica patched in place is indistinguishable from one rebuilt from
//! scratch.

use hignn::ingest::{
    apply_delta, hierarchy_fingerprint, read_delta_bytes, write_delta, HierarchyDelta,
    IngestConfig, IngestEngine,
};
use hignn::io::{read_hierarchy_bytes, save_hierarchy, write_hierarchy};
use hignn::prelude::*;
use hignn::stack::Hierarchy;
use hignn_datasets::taobao::{generate_taobao, TaobaoConfig};
use hignn_graph::BipartiteGraph;
use hignn_serve::{BeamWidth, ServeModel};
use hignn_tensor::init;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 8;

type Batch = Vec<(u32, u32, f32)>;

/// A trained base hierarchy over a prefix of a synthetic Taobao graph,
/// plus the held-out suffix edges (which introduce new users and items)
/// split into two ingestion batches.
fn trained_base() -> (Hierarchy, BipartiteGraph, Batch, Batch) {
    let ds = generate_taobao(&TaobaoConfig { seed: 11, ..TaobaoConfig::taobao1(0.05) });
    let old_u = ds.num_users() - 3;
    let old_i = ds.num_items() - 4;
    let mut base = Vec::new();
    let mut held = Vec::new();
    for &(u, i, w) in ds.graph.edges() {
        if (u as usize) < old_u && (i as usize) < old_i {
            base.push((u, i, w));
        } else {
            held.push((u, i, w));
        }
    }
    assert!(held.len() >= 4, "need a non-trivial holdout, got {}", held.len());
    let graph = BipartiteGraph::from_edges(old_u, old_i, base);
    let mut rng = StdRng::seed_from_u64(5);
    let uf = init::xavier_uniform(old_u, DIM, &mut rng);
    let if_ = init::xavier_uniform(old_i, DIM, &mut rng);
    let hierarchy = HignnBuilder::new()
        .levels(2)
        .input_dim(DIM)
        .embedding_dim(DIM)
        .epochs(1)
        .alpha_decay(6.0)
        .seed(3)
        .build()
        .unwrap()
        .run(&graph, &uf, &if_)
        .unwrap();
    let mid = held.len() / 2;
    let batch2 = held.split_off(mid);
    (hierarchy, graph, held, batch2)
}

fn bytes_of(h: &Hierarchy) -> Vec<u8> {
    let mut buf = Vec::new();
    write_hierarchy(&mut buf, h).unwrap();
    buf
}

fn ingest_once() -> (Hierarchy, HierarchyDelta, Hierarchy) {
    let (h, g, batch, _) = trained_base();
    let base = h.clone();
    let mut engine = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
    let (_, delta) = engine.ingest(&batch).unwrap();
    let patched = engine.hierarchy().clone();
    (base, delta, patched)
}

#[test]
fn delta_corruption_corpus_fails_closed() {
    let (_, delta, _) = ingest_once();
    let mut clean = Vec::new();
    write_delta(&mut clean, &delta).unwrap();
    // The delta must decode cleanly...
    read_delta_bytes(&clean).unwrap();
    // ...but every spread single-byte flip is detected,
    for pos in (0..clean.len()).step_by(17) {
        let mut evil = clean.clone();
        evil[pos] ^= 0x40;
        assert!(read_delta_bytes(&evil).is_err(), "flip at byte {pos}/{} accepted", clean.len());
    }
    // every prefix truncation errors instead of panicking,
    for cut in (0..clean.len()).step_by(23) {
        assert!(read_delta_bytes(&clean[..cut]).is_err(), "truncation at {cut} accepted");
    }
    // and trailing garbage is rejected.
    let mut padded = clean.clone();
    padded.extend_from_slice(b"junk");
    assert!(read_delta_bytes(&padded).is_err());
}

#[test]
fn apply_delta_is_exact_and_idempotence_is_refused() {
    let (base, delta, patched) = ingest_once();
    // Two independent fresh copies patch to identical bytes.
    let mut a = base.clone();
    let mut b = base;
    apply_delta(&mut a, &delta).unwrap();
    apply_delta(&mut b, &delta).unwrap();
    assert_eq!(bytes_of(&a), bytes_of(&b));
    assert_eq!(bytes_of(&a), bytes_of(&patched), "replica != writer");
    assert_eq!(hierarchy_fingerprint(&a), delta.patched_fingerprint);
    // A second application is refused (fingerprint/base checks) and the
    // hierarchy is left byte-identical.
    let before = bytes_of(&a);
    let err = apply_delta(&mut a, &delta).unwrap_err();
    assert_eq!(err.exit_code(), 4, "double apply must be corruption: {err}");
    assert_eq!(bytes_of(&a), before, "failed apply must not mutate");
}

#[test]
fn ingest_then_save_equals_save_then_ingest() {
    let (h, g, batch, _) = trained_base();
    // Path 1: ingest the live trained hierarchy, then serialise.
    let mut e1 = IngestEngine::new(h.clone(), g.clone(), IngestConfig::default()).unwrap();
    e1.ingest(&batch).unwrap();
    let live = bytes_of(e1.hierarchy());
    // Path 2: serialise, reload (as a restarted process would), ingest.
    let reloaded = read_hierarchy_bytes(&bytes_of(&h)).unwrap();
    let mut e2 = IngestEngine::new(reloaded, g, IngestConfig::default()).unwrap();
    e2.ingest(&batch).unwrap();
    let cold = bytes_of(e2.hierarchy());
    assert_eq!(live, cold, "ingestion must commute with persistence bitwise");
}

#[test]
fn serve_model_apply_delta_matches_full_rebuild_bitwise() {
    let (base, delta, patched) = ingest_once();
    let seed = 2020;
    let mut live = ServeModel::from_hierarchy(base, seed);
    live.apply_delta(&delta).unwrap();
    let rebuilt = ServeModel::from_hierarchy(patched, seed);
    assert_eq!(
        live.user_features().data(),
        rebuilt.user_features().data(),
        "incremental z_u^H differs from rebuild"
    );
    assert_eq!(live.item_features().data(), rebuilt.item_features().data());
    for l in 1..=live.num_levels() {
        assert_eq!(live.children(l), rebuilt.children(l), "children at tier {l}");
        assert_eq!(live.node_reps(l).data(), rebuilt.node_reps(l).data(), "reps at tier {l}");
    }
    // And the serving surface agrees bit for bit, old and new users.
    let k = 5.min(live.num_users());
    for user in [0, live.num_users() - 1] {
        for beam in [BeamWidth::Finite(4), BeamWidth::Infinite] {
            let a = live.top_k(user, k, beam).unwrap();
            let b = rebuilt.top_k(user, k, beam).unwrap();
            let ab: Vec<(u32, u32)> = a.iter().map(|s| (s.item, s.score.to_bits())).collect();
            let bb: Vec<(u32, u32)> = b.iter().map(|s| (s.item, s.score.to_bits())).collect();
            assert_eq!(ab, bb, "user {user} beam {beam}");
        }
    }
}

#[test]
fn serve_replica_catches_up_across_two_deltas_without_reload() {
    let (h, g, batch1, batch2) = trained_base();
    let dir = std::env::temp_dir().join(format!("hignn_ingest_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("base.hgh");
    save_hierarchy(&path, &h).unwrap();
    // The replica loads the base model from disk once...
    let mut replica = ServeModel::load(&path, 7).unwrap();
    // ...while the writer keeps ingesting.
    let mut writer = IngestEngine::new(h, g, IngestConfig::default()).unwrap();
    let (_, d1) = writer.ingest(&batch1).unwrap();
    let (_, d2) = writer.ingest(&batch2).unwrap();
    assert_eq!((d1.seq, d2.seq), (1, 2));
    assert_eq!(d2.base_fingerprint, d1.patched_fingerprint, "deltas chain");
    // Catch up in order, never reloading the file.
    replica.apply_delta(&d1).unwrap();
    replica.apply_delta(&d2).unwrap();
    assert_eq!(bytes_of(replica.hierarchy()), bytes_of(writer.hierarchy()));
    // Out-of-order application is refused.
    let mut stale = ServeModel::load(&path, 7).unwrap();
    let err = stale.apply_delta(&d2).unwrap_err();
    assert_eq!(err.exit_code(), 4, "skipping a delta must be detected: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}
