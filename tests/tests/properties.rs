//! Property-based integration tests over the substrate crates.

use hignn_graph::coarsen::{coarsen, Assignment};
use hignn_graph::{AliasTable, BipartiteGraph};
use hignn_metrics::{auc, log_loss};
use hignn_tensor::Matrix;
use proptest::prelude::*;

/// Strategy: a small bipartite graph as (num_left, num_right, edges).
fn graph_strategy() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32, f32)>)> {
    (2usize..12, 2usize..12).prop_flat_map(|(nl, nr)| {
        let edges = prop::collection::vec(
            (0..nl as u32, 0..nr as u32, 0.5f32..5.0),
            1..40,
        );
        (Just(nl), Just(nr), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coarsening_preserves_total_weight(
        (nl, nr, edges) in graph_strategy(),
        kl in 1usize..6,
        kr in 1usize..6,
    ) {
        let g = BipartiteGraph::from_edges(nl, nr, edges);
        let left = Assignment::new((0..nl).map(|v| (v % kl) as u32).collect(), kl);
        let right = Assignment::new((0..nr).map(|v| (v % kr) as u32).collect(), kr);
        let c = coarsen(&g, &left, &right);
        prop_assert!((c.total_weight() - g.total_weight()).abs() < 1e-3);
        prop_assert!(c.num_edges() <= g.num_edges());
        prop_assert_eq!(c.num_left(), kl);
        prop_assert_eq!(c.num_right(), kr);
    }

    #[test]
    fn csr_roundtrips_edges((nl, nr, edges) in graph_strategy()) {
        let g = BipartiteGraph::from_edges(nl, nr, edges.clone());
        // Every input edge is reachable through both CSR directions with
        // merged weight.
        for &(l, r, _) in &edges {
            let w = g.edge_weight(l as usize, r as usize);
            prop_assert!(w.is_some());
            let (nbrs, _) = g.neighbors(hignn_graph::Side::Right, r as usize);
            prop_assert!(nbrs.contains(&l));
        }
        // Degree sums match on both sides.
        let dl: usize = g.degrees(hignn_graph::Side::Left).iter().sum();
        let dr: usize = g.degrees(hignn_graph::Side::Right).iter().sum();
        prop_assert_eq!(dl, g.num_edges());
        prop_assert_eq!(dr, g.num_edges());
    }

    #[test]
    fn auc_is_invariant_under_monotone_transform(
        scores in prop::collection::vec(0.0f32..1.0, 2..60),
        labels in prop::collection::vec(any::<bool>(), 2..60),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let a1 = auc(scores, labels);
        let transformed: Vec<f32> = scores.iter().map(|s| s * 3.0 + 7.0).collect();
        let a2 = auc(&transformed, labels);
        prop_assert!((a1 - a2).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&a1));
    }

    #[test]
    fn auc_of_inverted_scores_is_complement(
        scores in prop::collection::vec(0.0f32..1.0, 2..60),
        labels in prop::collection::vec(any::<bool>(), 2..60),
    ) {
        let n = scores.len().min(labels.len());
        let scores = &scores[..n];
        let labels = &labels[..n];
        let pos = labels.iter().filter(|&&l| l).count();
        prop_assume!(pos > 0 && pos < n);
        // Break ties randomly-but-deterministically to keep the identity
        // exact: with ties, AUC(s) + AUC(-s) = 1 still holds because ties
        // contribute 0.5 either way.
        let inverted: Vec<f32> = scores.iter().map(|s| -s).collect();
        prop_assert!((auc(scores, labels) + auc(&inverted, labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_loss_is_nonnegative(
        probs in prop::collection::vec(0.0f32..=1.0, 1..50),
        labels in prop::collection::vec(any::<bool>(), 1..50),
    ) {
        let n = probs.len().min(labels.len());
        let l = log_loss(&probs[..n], &labels[..n]);
        prop_assert!(l >= 0.0 && l.is_finite());
    }

    #[test]
    fn alias_table_samples_in_range(
        weights in prop::collection::vec(0.01f64..10.0, 1..30),
        seed in any::<u64>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = table.sample(&mut rng);
            prop_assert!(s < weights.len());
        }
    }

    #[test]
    fn matmul_transpose_identity(
        a_vals in prop::collection::vec(-3.0f32..3.0, 6),
        b_vals in prop::collection::vec(-3.0f32..3.0, 6),
    ) {
        // (A * B)^T == B^T * A^T for 2x3 * 3x2.
        let a = Matrix::from_vec(2, 3, a_vals);
        let b = Matrix::from_vec(3, 2, b_vals);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.max_abs_diff(&right) < 1e-4);
    }

    #[test]
    fn mean_pool_matches_manual(
        vals in prop::collection::vec(-5.0f32..5.0, 12),
    ) {
        let m = Matrix::from_vec(6, 2, vals);
        let pooled = m.mean_pool_rows(3);
        for g in 0..2 {
            for c in 0..2 {
                let manual = (m.get(g * 3, c) + m.get(g * 3 + 1, c) + m.get(g * 3 + 2, c)) / 3.0;
                prop_assert!((pooled.get(g, c) - manual).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn replicate_sampling_hits_ratio(
        pos in 1usize..20,
        neg in 20usize..200,
    ) {
        use hignn_datasets::{replicate_positives, Sample, SampleStats};
        use rand::{rngs::StdRng, SeedableRng};
        let mut samples = Vec::new();
        for i in 0..pos {
            samples.push(Sample { user: i as u32, item: 0, label: true });
        }
        for i in 0..neg {
            samples.push(Sample { user: i as u32, item: 1, label: false });
        }
        let mut rng = StdRng::seed_from_u64(1);
        let out = replicate_positives(&samples, 3.0, &mut rng);
        let stats = SampleStats::of(&out);
        prop_assert_eq!(stats.negatives, neg);
        prop_assert!(stats.neg_per_pos() <= 3.0 + 1e-9);
        // Never drops samples.
        prop_assert!(out.len() >= samples.len());
    }
}
