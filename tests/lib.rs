//! Integration test helpers live in tests/tests/*.rs.
