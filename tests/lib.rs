//! Shared helpers for the integration tests in tests/tests/*.rs.

pub mod strategies;
pub mod support;
